package prog

import "mlpa/internal/isa"

// Examples returns the canonical builder-generated example programs
// used to cross-validate static control-flow analysis against the
// dynamic loop profiler: every cyclic structure in them is a
// structured counted loop, so the static natural-loop forest and the
// profiler's backward-branch discovery must agree exactly on loop
// heads and nesting depths.
func Examples() []*Program {
	return []*Program{
		ExampleNested(8, 5),
		ExampleTripleNested(4, 3, 6),
		ExampleSequential(7, 9),
		ExampleVariableTrip(10),
		ExampleDiamondLoop(12),
	}
}

// ExampleNested is a two-level nest: outer (outerTrips) around inner
// (innerTrips), with straight-line work in both bodies.
func ExampleNested(outerTrips, innerTrips int64) *Program {
	b := NewBuilder("ex_nested")
	b.CountedLoop("outer", 1, outerTrips, func() {
		b.Addi(3, 3, 1)
		b.CountedLoop("inner", 2, innerTrips, func() {
			b.Addi(4, 4, 1)
		})
	})
	b.Halt()
	return b.MustBuild()
}

// ExampleTripleNested is a three-level nest.
func ExampleTripleNested(t0, t1, t2 int64) *Program {
	b := NewBuilder("ex_triple")
	b.CountedLoop("l0", 1, t0, func() {
		b.Addi(5, 5, 1)
		b.CountedLoop("l1", 2, t1, func() {
			b.Addi(6, 6, 1)
			b.CountedLoop("l2", 3, t2, func() {
				b.Addi(7, 7, 1)
			})
		})
	})
	b.Halt()
	return b.MustBuild()
}

// ExampleSequential runs two independent outermost loops one after the
// other.
func ExampleSequential(firstTrips, secondTrips int64) *Program {
	b := NewBuilder("ex_sequential")
	b.CountedLoop("first", 1, firstTrips, func() {
		b.Addi(3, 3, 1)
	})
	b.CountedLoop("second", 1, secondTrips, func() {
		b.Addi(4, 4, 2)
	})
	b.Halt()
	return b.MustBuild()
}

// ExampleVariableTrip nests an inner loop whose trip count grows with
// the outer iteration (1, 2, ..., outerTrips), exercising
// variable-length iteration instances.
func ExampleVariableTrip(outerTrips int64) *Program {
	b := NewBuilder("ex_vartrip")
	b.Li(1, outerTrips) // outer counter, counts down
	b.Li(5, 1)          // inner trip count, counts up
	head := b.BeginLoop("outer")
	b.Add(2, 5, isa.RZero) // inner counter = current trip count
	inner := b.BeginLoop("inner")
	b.Addi(4, 4, 1)
	b.Addi(2, 2, -1)
	b.Bne(2, isa.RZero, inner)
	b.EndLoop()
	b.Addi(5, 5, 1)
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, head)
	b.EndLoop()
	b.Halt()
	return b.MustBuild()
}

// ExampleDiamondLoop is a single counted loop whose body branches into
// an if/else diamond on the counter's parity.
func ExampleDiamondLoop(trips int64) *Program {
	b := NewBuilder("ex_diamond")
	b.Li(9, 2)
	b.CountedLoop("main", 1, trips, func() {
		b.Rem(2, 1, 9) // counter parity
		els := b.AutoLabel("else")
		end := b.AutoLabel("endif")
		b.Beq(2, isa.RZero, els)
		b.Addi(3, 3, 1)
		b.Jmp(end)
		b.Label(els)
		b.Addi(4, 4, 1)
		b.Label(end)
	})
	b.Halt()
	return b.MustBuild()
}
