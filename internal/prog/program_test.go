package prog

import (
	"strings"
	"testing"

	"mlpa/internal/isa"
)

func simpleLoopProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("simple")
	b.Addi(1, isa.RZero, 10) // r1 = 10
	b.Label("loop")
	b.Addi(2, 2, 1) // r2++
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderBasic(t *testing.T) {
	p := simpleLoopProgram(t)
	if len(p.Code) != 5 {
		t.Fatalf("len(Code) = %d, want 5", len(p.Code))
	}
	if p.Code[3].Targ != 1 {
		t.Errorf("branch target = %d, want 1", p.Code[3].Targ)
	}
	if p.Labels["loop"] != 1 {
		t.Errorf("label loop = %d, want 1", p.Labels["loop"])
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("Build() err = %v, want undefined-label error", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("Build() with duplicate label succeeded")
	}
}

func TestBuilderUnclosedLoop(t *testing.T) {
	b := NewBuilder("open")
	b.BeginLoop("l")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("Build() with unclosed loop succeeded")
	}
}

func TestBuilderEndLoopWithoutBegin(t *testing.T) {
	b := NewBuilder("endonly")
	b.EndLoop()
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("Build() with stray EndLoop succeeded")
	}
}

func TestCountedLoopMetadata(t *testing.T) {
	b := NewBuilder("counted")
	b.CountedLoop("outer", 5, 3, func() {
		b.CountedLoop("inner", 6, 4, func() {
			b.Add(2, 2, 2)
		})
	})
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Loops) != 2 {
		t.Fatalf("len(Loops) = %d, want 2", len(p.Loops))
	}
	var outer, inner LoopInfo
	for _, l := range p.Loops {
		switch l.Name {
		case "outer":
			outer = l
		case "inner":
			inner = l
		}
	}
	if outer.Depth != 0 || inner.Depth != 1 {
		t.Errorf("depths outer=%d inner=%d, want 0 and 1", outer.Depth, inner.Depth)
	}
	if !(outer.Head <= inner.Head && inner.End <= outer.End) {
		t.Errorf("inner [%d,%d) not nested in outer [%d,%d)", inner.Head, inner.End, outer.Head, outer.End)
	}
	if got, ok := p.StaticLoopAt(inner.Head); !ok || got.Name != "inner" {
		t.Errorf("StaticLoopAt(inner.Head) = %v, %v", got, ok)
	}
}

func TestValidate(t *testing.T) {
	bad := &Program{Name: "x", Code: []isa.Inst{{Op: isa.OpBeq, Targ: 99}}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate() accepted out-of-range target")
	}
	noHalt := &Program{Name: "x", Code: []isa.Inst{{Op: isa.OpNop}}}
	if err := noHalt.Validate(); err == nil {
		t.Error("Validate() accepted program without halt")
	}
	empty := &Program{Name: "x"}
	if err := empty.Validate(); err == nil {
		t.Error("Validate() accepted empty program")
	}
}

func TestBasicBlocks(t *testing.T) {
	p := simpleLoopProgram(t)
	blocks := p.BasicBlocks()
	// Expected blocks: [0,1) init, [1,4) loop body incl branch, [4,5) halt.
	if len(blocks) != 3 {
		t.Fatalf("blocks = %v, want 3", blocks)
	}
	if blocks[0].Start != 0 || blocks[0].End != 1 {
		t.Errorf("block0 = %+v", blocks[0])
	}
	if blocks[1].Start != 1 || blocks[1].End != 4 {
		t.Errorf("block1 = %+v", blocks[1])
	}
	if p.BlockOf(2) != 1 {
		t.Errorf("BlockOf(2) = %d, want 1", p.BlockOf(2))
	}
	// Every instruction maps into exactly its containing block.
	for pc := int64(0); pc < int64(len(p.Code)); pc++ {
		b := blocks[p.BlockOf(pc)]
		if pc < b.Start || pc >= b.End {
			t.Errorf("BlockOf(%d) = block [%d,%d)", pc, b.Start, b.End)
		}
	}
}

func TestBlockInvariants(t *testing.T) {
	p := simpleLoopProgram(t)
	blocks := p.BasicBlocks()
	var total int64
	prevEnd := int64(0)
	for _, b := range blocks {
		if b.Start != prevEnd {
			t.Errorf("block %d starts at %d, want %d (contiguity)", b.ID, b.Start, prevEnd)
		}
		if b.Len() <= 0 {
			t.Errorf("block %d empty", b.ID)
		}
		total += b.Len()
		prevEnd = b.End
	}
	if total != int64(len(p.Code)) {
		t.Errorf("blocks cover %d instructions, program has %d", total, len(p.Code))
	}
}

func TestSuccessors(t *testing.T) {
	p := simpleLoopProgram(t)
	// Block 1 ends with bne -> successors are loop head (block 1) and
	// fall-through (block 2).
	succ := p.Successors(1)
	if len(succ) != 2 {
		t.Fatalf("Successors(1) = %v", succ)
	}
	has := map[int]bool{}
	for _, s := range succ {
		has[s] = true
	}
	if !has[1] || !has[2] {
		t.Errorf("Successors(1) = %v, want {1,2}", succ)
	}
	// Halt block: no successors.
	if s := p.Successors(2); len(s) != 0 {
		t.Errorf("Successors(halt) = %v", s)
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	p := simpleLoopProgram(t)
	dis := p.Disassemble()
	if !strings.Contains(dis, "loop:") {
		t.Errorf("Disassemble missing label:\n%s", dis)
	}
	if !strings.Contains(dis, "bne r1, r0, 1") {
		t.Errorf("Disassemble missing branch:\n%s", dis)
	}
}

func TestLiSmallAndLarge(t *testing.T) {
	b := NewBuilder("li")
	b.Li(1, 42)
	b.Li(2, 1<<40|12345)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Small immediate: single addi. Large: addi+shli+ori.
	if p.Code[0].Op != isa.OpAddi || p.Code[0].Imm != 42 {
		t.Errorf("small Li emitted %v", p.Code[0])
	}
	if len(p.Code) != 1+3+1 {
		t.Errorf("program length %d, want 5", len(p.Code))
	}
}

func TestReserveData(t *testing.T) {
	b := NewBuilder("data")
	b.ReserveData(100)
	b.ReserveData(50) // no shrink
	b.Halt()
	p := b.MustBuild()
	if p.DataSize != 100 {
		t.Errorf("DataSize = %d, want 100", p.DataSize)
	}
}
