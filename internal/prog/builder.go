package prog

import (
	"fmt"

	"mlpa/internal/isa"
)

// Builder constructs programs with structured control flow. Branch
// targets are expressed as labels and resolved at Build time; loops
// opened with BeginLoop/EndLoop record static LoopInfo metadata.
type Builder struct {
	name     string
	code     []isa.Inst
	labels   map[string]int64
	fixups   []fixup
	loops    []LoopInfo
	open     []openLoop
	dataSize int64
	nextAuto int
	err      error
}

type fixup struct {
	pc    int64
	label string
}

type openLoop struct {
	name      string
	head      int64
	loopIndex int
}

// NewBuilder returns an empty Builder for a program called name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int64),
	}
}

// Err returns the first error recorded while building, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("builder %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int64 { return int64(len(b.code)) }

// ReserveData grows the program's declared data segment to at least
// size bytes.
func (b *Builder) ReserveData(size int64) {
	if size > b.dataSize {
		b.dataSize = size
	}
}

// AutoLabel returns a fresh unique label with the given prefix.
func (b *Builder) AutoLabel(prefix string) string {
	b.nextAuto++
	return fmt.Sprintf("%s$%d", prefix, b.nextAuto)
}

// Label binds name to the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = b.PC()
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) {
	b.code = append(b.code, in)
}

// Instruction helpers. Each mirrors one opcode; branch forms take a
// label that is resolved at Build time.

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.OpNop}) }

// Halt emits program termination.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHalt}) }

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpAdd, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpSub, rd, rs1, rs2) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpMul, rd, rs1, rs2) }

// Div emits rd = rs1 / rs2.
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpDiv, rd, rs1, rs2) }

// Rem emits rd = rs1 % rs2.
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpRem, rd, rs1, rs2) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpAnd, rd, rs1, rs2) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpOr, rd, rs1, rs2) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpXor, rd, rs1, rs2) }

// Shl emits rd = rs1 << rs2.
func (b *Builder) Shl(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpShl, rd, rs1, rs2) }

// Shr emits rd = rs1 >> rs2 (logical).
func (b *Builder) Shr(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpShr, rd, rs1, rs2) }

// Slt emits rd = (rs1 < rs2) ? 1 : 0.
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) { b.rrr(isa.OpSlt, rd, rs1, rs2) }

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpAddi, rd, rs1, imm) }

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpAndi, rd, rs1, imm) }

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpOri, rd, rs1, imm) }

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpXori, rd, rs1, imm) }

// Shli emits rd = rs1 << imm.
func (b *Builder) Shli(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpShli, rd, rs1, imm) }

// Shri emits rd = rs1 >> imm (logical).
func (b *Builder) Shri(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpShri, rd, rs1, imm) }

// Slti emits rd = (rs1 < imm) ? 1 : 0.
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpSlti, rd, rs1, imm) }

// Lui emits rd = imm << 16.
func (b *Builder) Lui(rd isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpLui, Rd: rd, Imm: imm})
}

// Li loads an arbitrary 64-bit immediate using lui/ori/shli sequences.
func (b *Builder) Li(rd isa.Reg, v int64) {
	if v >= -(1<<31) && v < 1<<31 {
		b.Addi(rd, isa.RZero, v)
		return
	}
	b.Addi(rd, isa.RZero, v>>32)
	b.Shli(rd, rd, 32)
	b.Ori(rd, rd, v&0xffffffff)
}

// Ld emits rd = mem[rs1+imm].
func (b *Builder) Ld(rd, rs1 isa.Reg, imm int64) { b.rri(isa.OpLd, rd, rs1, imm) }

// St emits mem[rs1+imm] = rs2.
func (b *Builder) St(rs2, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpSt, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Fld emits fd = mem[rs1+imm].
func (b *Builder) Fld(fd, rs1 isa.Reg, imm int64) { b.rri(isa.OpFld, fd, rs1, imm) }

// Fst emits mem[rs1+imm] = fs2.
func (b *Builder) Fst(fs2, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpFst, Rs1: rs1, Rs2: fs2, Imm: imm})
}

// Fadd emits fd = fs1 + fs2.
func (b *Builder) Fadd(fd, fs1, fs2 isa.Reg) { b.rrr(isa.OpFadd, fd, fs1, fs2) }

// Fsub emits fd = fs1 - fs2.
func (b *Builder) Fsub(fd, fs1, fs2 isa.Reg) { b.rrr(isa.OpFsub, fd, fs1, fs2) }

// Fmul emits fd = fs1 * fs2.
func (b *Builder) Fmul(fd, fs1, fs2 isa.Reg) { b.rrr(isa.OpFmul, fd, fs1, fs2) }

// Fdiv emits fd = fs1 / fs2.
func (b *Builder) Fdiv(fd, fs1, fs2 isa.Reg) { b.rrr(isa.OpFdiv, fd, fs1, fs2) }

// Fneg emits fd = -fs1.
func (b *Builder) Fneg(fd, fs1 isa.Reg) { b.rr(isa.OpFneg, fd, fs1) }

// Fmov emits fd = fs1.
func (b *Builder) Fmov(fd, fs1 isa.Reg) { b.rr(isa.OpFmov, fd, fs1) }

// CvtIF emits fd = float(rs1).
func (b *Builder) CvtIF(fd, rs1 isa.Reg) { b.rr(isa.OpCvtIF, fd, rs1) }

// CvtFI emits rd = int(fs1).
func (b *Builder) CvtFI(rd, fs1 isa.Reg) { b.rr(isa.OpCvtFI, rd, fs1) }

// FcmpLt emits rd = (fs1 < fs2) ? 1 : 0.
func (b *Builder) FcmpLt(rd, fs1, fs2 isa.Reg) { b.rrr(isa.OpFcmpLt, rd, fs1, fs2) }

// FcmpEq emits rd = (fs1 == fs2) ? 1 : 0.
func (b *Builder) FcmpEq(rd, fs1, fs2 isa.Reg) { b.rrr(isa.OpFcmpEq, rd, fs1, fs2) }

// Beq emits a branch to label if rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) { b.branch(isa.OpBeq, rs1, rs2, label) }

// Bne emits a branch to label if rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) { b.branch(isa.OpBne, rs1, rs2, label) }

// Blt emits a branch to label if rs1 < rs2.
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) { b.branch(isa.OpBlt, rs1, rs2, label) }

// Bge emits a branch to label if rs1 >= rs2.
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) { b.branch(isa.OpBge, rs1, rs2, label) }

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	b.Emit(isa.Inst{Op: isa.OpJmp})
}

// Jal emits a jump-and-link to label, writing the return address into
// rd (conventionally isa.RRA).
func (b *Builder) Jal(rd isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	b.Emit(isa.Inst{Op: isa.OpJal, Rd: rd})
}

// Jr emits an indirect jump through rs1.
func (b *Builder) Jr(rs1 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpJr, Rs1: rs1})
}

func (b *Builder) rrr(op isa.Op, rd, rs1, rs2 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

func (b *Builder) rri(op isa.Op, rd, rs1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

func (b *Builder) rr(op isa.Op, rd, rs1 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1})
}

func (b *Builder) branch(op isa.Op, rs1, rs2 isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// BeginLoop opens a named loop whose body starts at the current PC.
// The returned head label can be branched to; EndLoop must close it.
func (b *Builder) BeginLoop(name string) (head string) {
	head = b.AutoLabel("loop_" + name)
	b.Label(head)
	b.open = append(b.open, openLoop{name: name, head: b.PC(), loopIndex: len(b.loops)})
	b.loops = append(b.loops, LoopInfo{Name: name, Head: b.PC(), Depth: len(b.open) - 1})
	return head
}

// EndLoop closes the innermost open loop, recording its extent.
func (b *Builder) EndLoop() {
	if len(b.open) == 0 {
		b.fail("EndLoop without BeginLoop")
		return
	}
	ol := b.open[len(b.open)-1]
	b.open = b.open[:len(b.open)-1]
	b.loops[ol.loopIndex].End = b.PC()
}

// CountedLoop emits a loop running body() trips times using counter
// register ctr (clobbered). The loop is recorded in LoopInfo.
func (b *Builder) CountedLoop(name string, ctr isa.Reg, trips int64, body func()) {
	b.Li(ctr, trips)
	head := b.BeginLoop(name)
	done := b.AutoLabel("done_" + name)
	b.Beq(ctr, isa.RZero, done)
	body()
	b.Addi(ctr, ctr, -1)
	b.Bne(ctr, isa.RZero, head)
	b.EndLoop()
	b.Label(done)
}

// Build resolves labels and returns the finished, validated Program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.open) > 0 {
		return nil, fmt.Errorf("builder %q: %d unclosed loops", b.name, len(b.open))
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("builder %q: undefined label %q at pc %d", b.name, f.label, f.pc)
		}
		b.code[f.pc].Targ = target
	}
	p := &Program{
		Name:     b.name,
		Code:     b.code,
		Labels:   b.labels,
		Loops:    b.loops,
		DataSize: b.dataSize,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build, panicking on error; for use in tests and
// generated-suite construction where failure is a programming bug.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
