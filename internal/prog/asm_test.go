package prog

import (
	"strings"
	"testing"

	"mlpa/internal/isa"
)

const asmLoop = `
; counting loop
    addi r1, r0, 10
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`

func TestAssembleLoop(t *testing.T) {
	p, err := Assemble("loop", asmLoop)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 5 {
		t.Fatalf("len(Code) = %d, want 5", len(p.Code))
	}
	if p.Code[3].Op != isa.OpBne || p.Code[3].Targ != 1 {
		t.Errorf("branch = %v", p.Code[3])
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	src := `
    addi r1, r0, 64
    ld   r2, 8(r1)
    st   r2, 16(r1)
    fld  f1, (r1)
    fst  f1, -8(r1)
    halt
`
	p, err := Assemble("mem", src)
	if err != nil {
		t.Fatal(err)
	}
	ld := p.Code[1]
	if ld.Op != isa.OpLd || ld.Rd != 2 || ld.Rs1 != 1 || ld.Imm != 8 {
		t.Errorf("ld = %v", ld)
	}
	st := p.Code[2]
	if st.Op != isa.OpSt || st.Rs2 != 2 || st.Rs1 != 1 || st.Imm != 16 {
		t.Errorf("st = %v", st)
	}
	fld := p.Code[3]
	if fld.Op != isa.OpFld || fld.Rd != isa.F(1) || fld.Imm != 0 {
		t.Errorf("fld = %v", fld)
	}
	fst := p.Code[4]
	if fst.Op != isa.OpFst || fst.Rs2 != isa.F(1) || fst.Imm != -8 {
		t.Errorf("fst = %v", fst)
	}
}

func TestAssembleFPAndJumps(t *testing.T) {
	src := `
start:
    fadd f1, f2, f3
    fneg f4, f1
    cvtif f5, r1
    cvtfi r2, f5
    jal  r31, func
    jmp  end
func:
    jr   r31
end:
    halt
`
	p, err := Assemble("fp", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Rd != isa.F(1) || p.Code[0].Rs1 != isa.F(2) {
		t.Errorf("fadd = %v", p.Code[0])
	}
	if p.Code[4].Op != isa.OpJal || p.Code[4].Targ != p.Labels["func"] {
		t.Errorf("jal = %v", p.Code[4])
	}
	if p.Code[5].Targ != p.Labels["end"] {
		t.Errorf("jmp = %v", p.Code[5])
	}
}

func TestAssembleNumericTarget(t *testing.T) {
	p, err := Assemble("num", "nop\njmp 0\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Targ != 0 {
		t.Errorf("jmp target = %d", p.Code[1].Targ)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown mnemonic", "frobnicate r1\nhalt", "unknown mnemonic"},
		{"bad register", "addi rX, r0, 1\nhalt", "register"},
		{"reg out of range", "addi r99, r0, 1\nhalt", "out of range"},
		{"fp out of range", "fmov f99, f0\nhalt", "out of range"},
		{"wrong arity", "add r1, r2\nhalt", "expects 3 operands"},
		{"undefined label", "jmp nowhere\nhalt", "undefined label"},
		{"duplicate label", "x:\nnop\nx:\nhalt", "duplicate label"},
		{"bad immediate", "addi r1, r0, abc\nhalt", "immediate"},
		{"bad memory operand", "ld r1, r2\nhalt", "memory operand"},
		{"no halt", "nop", "no halt"},
		{"absolute target past end", "nop\njmp 50\nhalt", "target 50 outside code [0,3)"},
		{"negative absolute target", "beq r1, r0, -2\nhalt", "target -2 outside"},
		{"trailing label target", "jmp end\nnop\nhalt\nend:", "target 3 outside code [0,3)"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("t", c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

// TestAssembleErrorNamesLine: target diagnostics carry the source line
// of the offending branch, not the end of the listing.
func TestAssembleErrorNamesLine(t *testing.T) {
	src := "nop\nnop\njmp 99\nhalt"
	_, err := Assemble("lines", src)
	if err == nil {
		t.Fatal("bad target accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want it to name line 3", err)
	}
	_, err = Assemble("lines", "x:\nnop\nx:\nhalt")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("duplicate-label err = %v, want it to name line 3", err)
	}
}

// Round trip: disassembling an assembled program and re-assembling it
// yields identical code.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	p, err := Assemble("rt", asmLoop)
	if err != nil {
		t.Fatal(err)
	}
	// Disassemble emits "idx: inst" lines; strip indices to re-assemble.
	var sb strings.Builder
	for _, line := range strings.Split(p.Disassemble(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if i := strings.Index(line, ":  "); i >= 0 && !strings.HasSuffix(line, ":") {
			line = line[i+3:]
		}
		sb.WriteString(line + "\n")
	}
	p2, err := Assemble("rt2", sb.String())
	if err != nil {
		t.Fatalf("reassemble: %v\nsource:\n%s", err, sb.String())
	}
	if len(p2.Code) != len(p.Code) {
		t.Fatalf("code length %d != %d", len(p2.Code), len(p.Code))
	}
	for i := range p.Code {
		if p.Code[i] != p2.Code[i] {
			t.Errorf("inst %d: %v != %v", i, p.Code[i], p2.Code[i])
		}
	}
}
