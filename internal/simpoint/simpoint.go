// Package simpoint implements the fine-grained SimPoint baseline of
// Sherwood et al. (ASPLOS'02) as released in SimPoint 3.x and used by
// the paper as its comparison point: fixed-length intervals, 15-dim
// randomly projected and normalized BBVs, k-means with BIC model
// selection up to Kmax = 30, centroid-nearest representatives and
// cluster-share weights. The EarlySP variant of Perelman et al.
// (PACT'03), which biases representative choice toward early
// intervals, is included as an option.
package simpoint

import (
	"fmt"
	"math"

	"mlpa/internal/bbv"
	"mlpa/internal/kmeans"
	"mlpa/internal/linalg"
	"mlpa/internal/obs"
	"mlpa/internal/phase"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
)

// Config parameterizes the SimPoint pipeline.
type Config struct {
	// IntervalLen is the fixed interval length in instructions (the
	// paper compares against 10M-instruction SimPoint; express it in
	// the workload's own units).
	IntervalLen uint64

	// Kmax bounds the number of clusters (SimPoint default 30).
	Kmax int

	// Dims is the projected BBV dimensionality (default 15).
	Dims int

	// Seed drives the random projection and clustering determinism.
	Seed int64

	// BICFraction is the BIC selection threshold (default 0.9).
	BICFraction float64

	// EarlySP selects the earliest interval whose distance to the
	// centroid is within EarlyTolerance x the minimum distance,
	// instead of the nearest interval.
	EarlySP bool

	// EarlyTolerance is the distance slack factor for EarlySP
	// (default 1.3).
	EarlyTolerance float64

	// SampleCap bounds the number of intervals the clustering stage
	// examines directly (0 = all); long traces are stride-sampled and
	// the rest assigned to the nearest centroid, as SimPoint does.
	SampleCap int

	// Obs, if non-nil, receives stage spans, clustering metrics and a
	// per-selection journal record.
	Obs *obs.Runtime
}

func (c Config) withDefaults() Config {
	if c.Kmax <= 0 {
		c.Kmax = 30
	}
	if c.Dims <= 0 {
		c.Dims = bbv.DefaultDims
	}
	if c.BICFraction <= 0 {
		c.BICFraction = 0.9
	}
	if c.EarlyTolerance <= 1 {
		c.EarlyTolerance = 1.3
	}
	return c
}

// MethodName is the plan label for standard SimPoint.
const MethodName = "simpoint"

// MethodNameEarly is the plan label for the EarlySP variant.
const MethodNameEarly = "earlysp"

// Profile collects the fixed-length interval trace SimPoint clusters.
func Profile(p *prog.Program, cfg Config) (*phase.Trace, error) {
	cfg = cfg.withDefaults()
	if cfg.IntervalLen == 0 {
		return nil, fmt.Errorf("simpoint: IntervalLen = 0")
	}
	span := cfg.Obs.StartSpan("simpoint.profile",
		obs.KV("benchmark", p.Name), obs.KV("interval_len", cfg.IntervalLen))
	defer span.End()
	proj, err := bbv.NewProjector(p.NumBlocks(), cfg.Dims, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tr, err := phase.CollectFixed(p, proj, cfg.IntervalLen)
	if err == nil {
		span.SetAttr("intervals", len(tr.Intervals))
	}
	return tr, err
}

// SelectFromTrace clusters an existing fixed-length trace and returns
// the sampling plan plus the clustering (for inspection).
func SelectFromTrace(tr *phase.Trace, cfg Config) (*sampling.Plan, *kmeans.Result, error) {
	cfg = cfg.withDefaults()
	if len(tr.Intervals) == 0 {
		return nil, nil, fmt.Errorf("simpoint: empty trace for %s", tr.Benchmark)
	}
	span := cfg.Obs.StartSpan("simpoint.cluster",
		obs.KV("benchmark", tr.Benchmark), obs.KV("intervals", len(tr.Intervals)))
	defer span.End()
	km, err := kmeans.Best(tr.Vectors(), cfg.Kmax, kmeans.Options{
		Seed:        cfg.Seed,
		BICFraction: cfg.BICFraction,
		SampleCap:   cfg.SampleCap,
		Metrics:     cfg.Obs.Metrics(),
	})
	if err != nil {
		return nil, nil, err
	}
	span.SetAttr("k", km.K)
	span.SetAttr("cluster_sizes", append([]int(nil), km.Sizes...))

	var reps []int
	if cfg.EarlySP {
		reps = earlyReps(tr, km, cfg.EarlyTolerance)
	} else {
		reps = kmeans.NearestToCentroid(tr.Vectors(), km)
	}

	// Cluster weights by instruction share (equal-length intervals
	// make this SimPoint's interval-count share, but the final partial
	// interval is weighted honestly).
	clusterInsts := make([]uint64, km.K)
	for i, iv := range tr.Intervals {
		clusterInsts[km.Assign[i]] += iv.Len()
	}

	method := MethodName
	if cfg.EarlySP {
		method = MethodNameEarly
	}
	plan := &sampling.Plan{
		Benchmark:  tr.Benchmark,
		Method:     method,
		TotalInsts: tr.TotalInsts,
	}
	for c, rep := range reps {
		if rep < 0 {
			continue // empty cluster
		}
		iv := tr.Intervals[rep]
		plan.Points = append(plan.Points, sampling.Point{
			Start:    iv.Start,
			End:      iv.End,
			Weight:   float64(clusterInsts[c]) / float64(tr.TotalInsts),
			Level:    1,
			Interval: rep,
			Parent:   -1,
		})
	}
	plan.Sort()
	plan.NormalizeWeights()
	if err := plan.Validate(); err != nil {
		return nil, nil, err
	}
	cfg.Obs.Emit("selection", map[string]any{
		"benchmark": plan.Benchmark,
		"method":    method,
		"k":         km.K,
		"points":    len(plan.Points),
		"detailed":  plan.DetailedFraction(),
	})
	return plan, km, nil
}

// Select runs the full SimPoint pipeline on a program: profile,
// cluster, and choose simulation points.
func Select(p *prog.Program, cfg Config) (*sampling.Plan, *phase.Trace, *kmeans.Result, error) {
	tr, err := Profile(p, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	plan, km, err := SelectFromTrace(tr, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return plan, tr, km, nil
}

// earlyReps picks, per cluster, the earliest interval whose distance
// to the centroid is within tolerance x the minimum distance in that
// cluster (the EarlySP criterion).
func earlyReps(tr *phase.Trace, km *kmeans.Result, tolerance float64) []int {
	minDist := make([]float64, km.K)
	for c := range minDist {
		minDist[c] = math.Inf(1)
	}
	for i, iv := range tr.Intervals {
		c := km.Assign[i]
		if d := linalg.Dist(iv.Vector, km.Centroids[c]); d < minDist[c] {
			minDist[c] = d
		}
	}
	reps := make([]int, km.K)
	for c := range reps {
		reps[c] = -1
	}
	for i, iv := range tr.Intervals {
		c := km.Assign[i]
		if reps[c] >= 0 {
			continue // already found the earliest qualifying interval
		}
		if linalg.Dist(iv.Vector, km.Centroids[c]) <= minDist[c]*tolerance+1e-15 {
			reps[c] = i
		}
	}
	return reps
}
