package simpoint

import (
	"testing"

	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// phasedProgram runs three distinct kernels in sequence, each long
// enough to span several intervals.
func phasedProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("threephase")
	b.CountedLoop("a", 1, 300, func() {
		b.Add(2, 2, 2)
		b.Xor(3, 3, 2)
	})
	b.CountedLoop("b", 1, 300, func() {
		b.Mul(4, 4, 4)
		b.Addi(4, 4, 3)
	})
	b.CountedLoop("c", 1, 300, func() {
		b.Fadd(isa.F(1), isa.F(1), isa.F(2))
		b.Fmul(isa.F(3), isa.F(1), isa.F(1))
	})
	b.Halt()
	return b.MustBuild()
}

func TestSelectBasics(t *testing.T) {
	p := phasedProgram(t)
	plan, tr, km, err := Select(p, Config{IntervalLen: 100, Kmax: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodName {
		t.Errorf("Method = %q", plan.Method)
	}
	if plan.TotalInsts != tr.TotalInsts {
		t.Errorf("plan total %d != trace total %d", plan.TotalInsts, tr.TotalInsts)
	}
	// Three clearly distinct kernels: expect K in [3, 6] and at least
	// 3 points.
	if km.K < 3 {
		t.Errorf("K = %d, want >= 3 for three distinct phases", km.K)
	}
	if len(plan.Points) < 3 {
		t.Errorf("points = %d, want >= 3", len(plan.Points))
	}
}

func TestPointsAlignToIntervals(t *testing.T) {
	p := phasedProgram(t)
	plan, tr, _, err := Select(p, Config{IntervalLen: 100, Kmax: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range plan.Points {
		iv := tr.Intervals[pt.Interval]
		if pt.Start != iv.Start || pt.End != iv.End {
			t.Errorf("point [%d,%d) does not match interval %d [%d,%d)", pt.Start, pt.End, pt.Interval, iv.Start, iv.End)
		}
		if pt.Level != 1 || pt.Parent != -1 {
			t.Errorf("point metadata = %+v", pt)
		}
	}
}

func TestWeightsMatchClusterShares(t *testing.T) {
	p := phasedProgram(t)
	plan, tr, km, err := Select(p, Config{IntervalLen: 100, Kmax: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct cluster instruction shares and compare.
	clusterInsts := make(map[int]uint64)
	for i, iv := range tr.Intervals {
		clusterInsts[km.Assign[i]] += iv.Len()
	}
	for _, pt := range plan.Points {
		c := km.Assign[pt.Interval]
		want := float64(clusterInsts[c]) / float64(tr.TotalInsts)
		if diff := pt.Weight - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("point weight %v, want %v", pt.Weight, want)
		}
	}
}

func TestEarlySPPicksEarlierPoints(t *testing.T) {
	p := phasedProgram(t)
	std, _, _, err := Select(p, Config{IntervalLen: 100, Kmax: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	early, _, _, err := Select(p, Config{IntervalLen: 100, Kmax: 8, Seed: 4, EarlySP: true, EarlyTolerance: 3})
	if err != nil {
		t.Fatal(err)
	}
	if early.Method != MethodNameEarly {
		t.Errorf("Method = %q", early.Method)
	}
	if early.LastPosition() > std.LastPosition()+1e-9 {
		t.Errorf("EarlySP last position %v > standard %v", early.LastPosition(), std.LastPosition())
	}
}

func TestConfigErrors(t *testing.T) {
	p := phasedProgram(t)
	if _, _, _, err := Select(p, Config{}); err == nil {
		t.Error("zero IntervalLen accepted")
	}
}

func TestDeterministicSelection(t *testing.T) {
	p := phasedProgram(t)
	cfg := Config{IntervalLen: 100, Kmax: 8, Seed: 7}
	p1, _, _, err := Select(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, _, err := Select(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Points) != len(p2.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(p1.Points), len(p2.Points))
	}
	for i := range p1.Points {
		if p1.Points[i] != p2.Points[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, p1.Points[i], p2.Points[i])
		}
	}
}

func TestRepresentativeIsNearCentroid(t *testing.T) {
	p := phasedProgram(t)
	plan, tr, km, err := Select(p, Config{IntervalLen: 100, Kmax: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range plan.Points {
		c := km.Assign[pt.Interval]
		repDist := dist2(tr.Intervals[pt.Interval].Vector, km.Centroids[c])
		for i := range tr.Intervals {
			if km.Assign[i] == c {
				if d := dist2(tr.Intervals[i].Vector, km.Centroids[c]); d < repDist-1e-12 {
					t.Fatalf("interval %d closer to centroid than representative %d", i, pt.Interval)
				}
			}
		}
	}
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
