// Package bpred implements the branch predictors of the detailed
// simulator: bimodal, gshare (2-level), and the combined predictor
// with a meta-chooser that Table I configures ("Combined, 8K BHT
// entries"), plus a branch target buffer and return-address stack.
package bpred

import "fmt"

// Outcome is a 2-bit saturating counter.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// DirPredictor predicts conditional-branch direction.
type DirPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc int64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc int64, taken bool)
	// Name identifies the predictor.
	Name() string
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter
	mask  int64
}

// NewBimodal creates a bimodal predictor with entries counters
// (rounded up to a power of two). Counters initialize weakly taken,
// matching SimpleScalar.
func NewBimodal(entries int) *Bimodal {
	n := 1
	for n < entries {
		n <<= 1
	}
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: int64(n - 1)}
}

// Name implements DirPredictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc int64) bool { return b.table[pc&b.mask].taken() }

// Update implements DirPredictor.
func (b *Bimodal) Update(pc int64, taken bool) {
	i := pc & b.mask
	b.table[i] = b.table[i].update(taken)
}

// GShare is a global-history predictor XOR-indexing a counter table.
type GShare struct {
	table   []counter
	mask    int64
	history int64
	bits    uint
}

// NewGShare creates a gshare predictor with entries counters and
// historyBits of global history.
func NewGShare(entries int, historyBits uint) *GShare {
	n := 1
	for n < entries {
		n <<= 1
	}
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: int64(n - 1), bits: historyBits}
}

// Name implements DirPredictor.
func (g *GShare) Name() string { return "gshare" }

func (g *GShare) index(pc int64) int64 {
	return (pc ^ g.history) & g.mask
}

// Predict implements DirPredictor.
func (g *GShare) Predict(pc int64) bool { return g.table[g.index(pc)].taken() }

// Update implements DirPredictor.
func (g *GShare) Update(pc int64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.bits) - 1
}

// Combined is SimpleScalar's "comb" predictor: bimodal and gshare in
// parallel with a bimodal meta-chooser selecting between them per
// branch.
type Combined struct {
	bim  *Bimodal
	gsh  *GShare
	meta []counter // >=2 chooses gshare
	mask int64
}

// NewCombined creates a combined predictor; entries sizes all three
// tables (Table I: 8K BHT entries).
func NewCombined(entries int) *Combined {
	n := 1
	for n < entries {
		n <<= 1
	}
	meta := make([]counter, n)
	for i := range meta {
		meta[i] = 2
	}
	return &Combined{
		bim:  NewBimodal(n),
		gsh:  NewGShare(n, 12),
		meta: meta,
		mask: int64(n - 1),
	}
}

// Name implements DirPredictor.
func (c *Combined) Name() string { return "combined" }

// Predict implements DirPredictor.
func (c *Combined) Predict(pc int64) bool {
	if c.meta[pc&c.mask].taken() {
		return c.gsh.Predict(pc)
	}
	return c.bim.Predict(pc)
}

// Update implements DirPredictor: trains both components and moves the
// chooser toward whichever component was right.
func (c *Combined) Update(pc int64, taken bool) {
	bp := c.bim.Predict(pc)
	gp := c.gsh.Predict(pc)
	if bp != gp {
		i := pc & c.mask
		c.meta[i] = c.meta[i].update(gp == taken)
	}
	c.bim.Update(pc, taken)
	c.gsh.Update(pc, taken)
}

// Static predictors for ablation baselines.

// Static always predicts a fixed direction.
type Static struct{ Taken bool }

// Name implements DirPredictor.
func (s Static) Name() string {
	if s.Taken {
		return "always-taken"
	}
	return "always-not-taken"
}

// Predict implements DirPredictor.
func (s Static) Predict(int64) bool { return s.Taken }

// Update implements DirPredictor (no state).
func (s Static) Update(int64, bool) {}

// BTB is a direct-mapped, tagged branch target buffer.
type BTB struct {
	tags    []int64
	targets []int64
	mask    int64
}

// NewBTB creates a BTB with the given entry count (rounded to a power
// of two).
func NewBTB(entries int) *BTB {
	n := 1
	for n < entries {
		n <<= 1
	}
	tags := make([]int64, n)
	for i := range tags {
		tags[i] = -1
	}
	return &BTB{tags: tags, targets: make([]int64, n), mask: int64(n - 1)}
}

// Lookup returns the predicted target for the branch at pc, if present.
func (b *BTB) Lookup(pc int64) (target int64, ok bool) {
	i := pc & b.mask
	if b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Update records the resolved target of a taken branch.
func (b *BTB) Update(pc, target int64) {
	i := pc & b.mask
	b.tags[i] = pc
	b.targets[i] = target
}

// RAS is a return-address stack for call/return prediction.
type RAS struct {
	stack []int64
	top   int
	size  int
}

// NewRAS creates a return-address stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth < 1 {
		depth = 1
	}
	return &RAS{stack: make([]int64, depth), size: depth}
}

// Push records a return address at a call.
func (r *RAS) Push(addr int64) {
	r.stack[r.top%r.size] = addr
	r.top++
}

// Pop predicts the target of a return. ok is false when the stack is
// empty.
func (r *RAS) Pop() (addr int64, ok bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top%r.size], true
}

// Stats tracks prediction accuracy.
type Stats struct {
	Lookups      uint64
	DirMisses    uint64 // wrong direction
	TargetMisses uint64 // right direction, wrong/unknown target
}

// Mispredicts returns total mispredictions.
func (s Stats) Mispredicts() uint64 { return s.DirMisses + s.TargetMisses }

// Accuracy returns the fraction of correct predictions.
func (s Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts())/float64(s.Lookups)
}

// Unit bundles direction predictor, BTB and RAS into the front-end
// branch unit used by the detailed simulator.
type Unit struct {
	Dir     DirPredictor
	BTB     *BTB
	RAS     *RAS
	perfect bool
	stats   Stats
}

// Kind selects a direction predictor family for NewUnit.
type Kind string

// Supported predictor kinds.
const (
	KindCombined Kind = "combined"
	KindBimodal  Kind = "bimodal"
	KindGShare   Kind = "gshare"
	KindPAg      Kind = "pag"
	KindTaken    Kind = "taken"
	KindNotTaken Kind = "nottaken"
	// KindPerfect is the oracle: every prediction is correct. It
	// bounds how much of a workload's CPI is branch-induced.
	KindPerfect Kind = "perfect"
)

// NewUnit builds a branch unit with bhtEntries direction entries, a
// 512-entry BTB and an 8-deep RAS.
func NewUnit(kind Kind, bhtEntries int) (*Unit, error) {
	var dir DirPredictor
	switch kind {
	case KindCombined:
		dir = NewCombined(bhtEntries)
	case KindBimodal:
		dir = NewBimodal(bhtEntries)
	case KindGShare:
		dir = NewGShare(bhtEntries, 12)
	case KindPAg:
		dir = NewPAg(bhtEntries, 10)
	case KindTaken:
		dir = Static{Taken: true}
	case KindNotTaken:
		dir = Static{Taken: false}
	case KindPerfect:
		dir = Static{Taken: true} // unused; the unit short-circuits
	default:
		return nil, fmt.Errorf("bpred: unknown predictor kind %q", kind)
	}
	return &Unit{Dir: dir, BTB: NewBTB(512), RAS: NewRAS(8), perfect: kind == KindPerfect}, nil
}

// Stats returns prediction statistics.
func (u *Unit) Stats() Stats { return u.stats }

// ResetStats zeroes statistics without clearing predictor state.
func (u *Unit) ResetStats() { u.stats = Stats{} }

// PredictCond predicts a conditional branch at pc and immediately
// trains with the resolved outcome (execution-driven simulation knows
// the truth at fetch time; the timing model charges the misprediction
// penalty separately). Returns whether the prediction was correct.
func (u *Unit) PredictCond(pc int64, taken bool, target int64) bool {
	u.stats.Lookups++
	if u.perfect {
		return true
	}
	pred := u.Dir.Predict(pc)
	u.Dir.Update(pc, taken)
	correct := pred == taken
	if correct && taken {
		// Direction right; target must come from the BTB.
		if t, ok := u.BTB.Lookup(pc); !ok || t != target {
			u.stats.TargetMisses++
			correct = false
		}
	}
	if !correct {
		if pred != taken {
			u.stats.DirMisses++
		}
	}
	if taken {
		u.BTB.Update(pc, target)
	}
	return correct
}

// PredictJump handles unconditional direct jumps (always taken; target
// from BTB on first sight).
func (u *Unit) PredictJump(pc, target int64) bool {
	u.stats.Lookups++
	if u.perfect {
		return true
	}
	t, ok := u.BTB.Lookup(pc)
	correct := ok && t == target
	if !correct {
		u.stats.TargetMisses++
	}
	u.BTB.Update(pc, target)
	return correct
}

// PredictCall records the return address and predicts like a jump.
func (u *Unit) PredictCall(pc, target, returnAddr int64) bool {
	u.RAS.Push(returnAddr)
	return u.PredictJump(pc, target)
}

// PredictReturn predicts an indirect jump via the RAS.
func (u *Unit) PredictReturn(pc, target int64) bool {
	u.stats.Lookups++
	if u.perfect {
		return true
	}
	t, ok := u.RAS.Pop()
	correct := ok && t == target
	if !correct {
		u.stats.TargetMisses++
	}
	return correct
}

// PAg is a two-level local-history predictor: a per-branch history
// table feeds a shared pattern table of 2-bit counters (the "PAg"
// organization of Yeh & Patt).
type PAg struct {
	histories []uint16 // per-branch local histories
	histMask  int64
	bits      uint
	table     []counter
	tableMask int64
}

// NewPAg creates a local-history predictor with the given number of
// per-branch history entries and history bits; the pattern table has
// 2^historyBits counters.
func NewPAg(entries int, historyBits uint) *PAg {
	n := 1
	for n < entries {
		n <<= 1
	}
	if historyBits == 0 || historyBits > 16 {
		historyBits = 10
	}
	t := make([]counter, 1<<historyBits)
	for i := range t {
		t[i] = 2
	}
	return &PAg{
		histories: make([]uint16, n),
		histMask:  int64(n - 1),
		bits:      historyBits,
		table:     t,
		tableMask: int64(len(t) - 1),
	}
}

// Name implements DirPredictor.
func (p *PAg) Name() string { return "pag" }

// Predict implements DirPredictor.
func (p *PAg) Predict(pc int64) bool {
	h := int64(p.histories[pc&p.histMask]) & p.tableMask
	return p.table[h].taken()
}

// Update implements DirPredictor.
func (p *PAg) Update(pc int64, taken bool) {
	i := pc & p.histMask
	h := int64(p.histories[i]) & p.tableMask
	p.table[h] = p.table[h].update(taken)
	p.histories[i] <<= 1
	if taken {
		p.histories[i] |= 1
	}
	p.histories[i] &= uint16(1<<p.bits - 1)
}
