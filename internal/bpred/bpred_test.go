package bpred

import (
	"math/rand"
	"testing"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter underflow: %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter overflow: %d", c)
	}
	if !c.taken() {
		t.Error("saturated counter not taken")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := int64(0x40)
	for i := 0; i < 8; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal did not learn taken bias")
	}
	for i := 0; i < 8; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal did not learn not-taken bias")
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	// Alternating T/NT pattern: bimodal oscillates but gshare should
	// learn it via history.
	g := NewGShare(4096, 12)
	pc := int64(0x80)
	correct := 0
	total := 2000
	for i := 0; i < total; i++ {
		taken := i%2 == 0
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
	}
	// After warmup, accuracy should approach 100%; require >90% overall.
	if float64(correct)/float64(total) < 0.9 {
		t.Errorf("gshare accuracy on alternating pattern = %d/%d", correct, total)
	}
}

func TestCombinedBeatsWorstComponent(t *testing.T) {
	// Branch A: strongly biased (bimodal-friendly).
	// Branch B: alternating (gshare-friendly).
	c := NewCombined(8192)
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		// A
		if c.Predict(0x100) == true {
			correct++
		}
		c.Update(0x100, true)
		total++
		// B
		taken := i%2 == 0
		if c.Predict(0x204) == taken {
			correct++
		}
		c.Update(0x204, taken)
		total++
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("combined accuracy = %.3f, want > 0.9", acc)
	}
}

func TestStaticPredictors(t *testing.T) {
	if !(Static{Taken: true}).Predict(0) {
		t.Error("always-taken predicted not-taken")
	}
	if (Static{Taken: false}).Predict(0) {
		t.Error("always-not-taken predicted taken")
	}
	if (Static{Taken: true}).Name() != "always-taken" {
		t.Error("name wrong")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(512)
	if _, ok := b.Lookup(0x40); ok {
		t.Error("empty BTB hit")
	}
	b.Update(0x40, 0x999)
	if tgt, ok := b.Lookup(0x40); !ok || tgt != 0x999 {
		t.Errorf("Lookup = %d, %v", tgt, ok)
	}
	// Aliasing entry with same index but different tag misses.
	alias := int64(0x40 + 512)
	if _, ok := b.Lookup(alias); ok {
		t.Error("aliased PC hit with wrong tag")
	}
	b.Update(alias, 0x111)
	if _, ok := b.Lookup(0x40); ok {
		t.Error("evicted entry still present")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := int64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = %d, %v; want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("drained RAS popped")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if got, _ := r.Pop(); got != 3 {
		t.Errorf("Pop = %d, want 3", got)
	}
	if got, _ := r.Pop(); got != 2 {
		t.Errorf("Pop = %d, want 2", got)
	}
}

func TestNewUnitKinds(t *testing.T) {
	for _, k := range []Kind{KindCombined, KindBimodal, KindGShare, KindTaken, KindNotTaken} {
		u, err := NewUnit(k, 8192)
		if err != nil {
			t.Errorf("NewUnit(%q): %v", k, err)
			continue
		}
		if u.Dir == nil || u.BTB == nil || u.RAS == nil {
			t.Errorf("NewUnit(%q) missing components", k)
		}
	}
	if _, err := NewUnit("bogus", 8192); err == nil {
		t.Error("NewUnit(bogus) succeeded")
	}
}

func TestUnitCondStats(t *testing.T) {
	u, _ := NewUnit(KindCombined, 8192)
	pc, target := int64(0x10), int64(0x80)
	// First taken: direction predicted taken (init weakly-taken) but
	// BTB is cold -> target miss.
	if u.PredictCond(pc, true, target) {
		t.Error("cold taken branch predicted correctly despite empty BTB")
	}
	// Now BTB warm: repeated taken branches predict correctly.
	for i := 0; i < 4; i++ {
		u.PredictCond(pc, true, target)
	}
	s := u.Stats()
	if s.Lookups != 5 {
		t.Errorf("lookups = %d", s.Lookups)
	}
	if s.Mispredicts() == 0 || s.Mispredicts() > 2 {
		t.Errorf("mispredicts = %d, want 1-2", s.Mispredicts())
	}
	if s.Accuracy() <= 0.5 {
		t.Errorf("accuracy = %v", s.Accuracy())
	}
}

func TestUnitJumpAndCallReturn(t *testing.T) {
	u, _ := NewUnit(KindCombined, 8192)
	if u.PredictJump(0x20, 0x100) {
		t.Error("cold jump predicted")
	}
	if !u.PredictJump(0x20, 0x100) {
		t.Error("warm jump mispredicted")
	}
	// Call pushes return address; matching return predicts correctly.
	u.PredictCall(0x30, 0x200, 0x31)
	if !u.PredictReturn(0x210, 0x31) {
		t.Error("return mispredicted despite RAS")
	}
	// Unbalanced return mispredicts.
	if u.PredictReturn(0x220, 0x99) {
		t.Error("return predicted with empty RAS")
	}
}

func TestResetStats(t *testing.T) {
	u, _ := NewUnit(KindBimodal, 64)
	u.PredictCond(0, true, 8)
	u.ResetStats()
	if s := u.Stats(); s.Lookups != 0 || s.Mispredicts() != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestAccuracyEmptyStats(t *testing.T) {
	var s Stats
	if s.Accuracy() != 1 {
		t.Errorf("empty accuracy = %v", s.Accuracy())
	}
}

// Random-pattern sanity: predictors never crash and accuracy stays in
// [0,1] under arbitrary branch streams.
func TestUnitRandomStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	u, _ := NewUnit(KindCombined, 8192)
	for i := 0; i < 10000; i++ {
		pc := int64(rng.Intn(64)) * 4
		taken := rng.Intn(3) > 0
		u.PredictCond(pc, taken, pc+int64(rng.Intn(100)))
	}
	acc := u.Stats().Accuracy()
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy out of range: %v", acc)
	}
}

func TestPAgLearnsLocalPattern(t *testing.T) {
	// Two branches with different local patterns: a global-history
	// predictor sees interleaved noise, per-branch histories separate
	// them cleanly.
	p := NewPAg(1024, 10)
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		// Branch A: period-3 pattern T,T,N.
		takenA := i%3 != 2
		if p.Predict(0x40) == takenA {
			correct++
		}
		p.Update(0x40, takenA)
		total++
		// Branch B: alternating.
		takenB := i%2 == 0
		if p.Predict(0x84) == takenB {
			correct++
		}
		p.Update(0x84, takenB)
		total++
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("PAg accuracy = %v, want > 0.9", acc)
	}
}

func TestPAgUnitConstruction(t *testing.T) {
	u, err := NewUnit(KindPAg, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if u.Dir.Name() != "pag" {
		t.Errorf("name = %q", u.Dir.Name())
	}
	u.PredictCond(0x10, true, 0x40)
	if u.Stats().Lookups != 1 {
		t.Error("stats not tracked")
	}
}

func TestPerfectPredictor(t *testing.T) {
	u, err := NewUnit(KindPerfect, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		pc := int64(rng.Intn(128)) * 4
		if !u.PredictCond(pc, rng.Intn(2) == 0, pc+int64(rng.Intn(50))) {
			t.Fatal("perfect predictor mispredicted a branch")
		}
		if !u.PredictJump(pc, pc+9) || !u.PredictReturn(pc, pc+1) {
			t.Fatal("perfect predictor mispredicted a jump/return")
		}
	}
	if s := u.Stats(); s.Mispredicts() != 0 || s.Accuracy() != 1 {
		t.Errorf("perfect stats = %+v", s)
	}
}
