package trace

import (
	"bytes"
	"testing"

	"mlpa/internal/phase"
)

func sampleTrace() *phase.Trace {
	return &phase.Trace{
		Benchmark:  "bm",
		Kind:       phase.FixedLength,
		TotalInsts: 30,
		Intervals: []phase.Interval{
			{Index: 0, Start: 0, End: 10, Vector: []float64{0.5, 0.5}},
			{Index: 1, Start: 10, End: 20, Vector: []float64{1, 0}},
			{Index: 2, Start: 20, End: 30, Vector: []float64{0, 1}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != tr.Benchmark || got.Kind != tr.Kind || got.TotalInsts != tr.TotalInsts {
		t.Errorf("header = %+v", got)
	}
	if len(got.Intervals) != len(tr.Intervals) {
		t.Fatalf("intervals = %d", len(got.Intervals))
	}
	for i, iv := range tr.Intervals {
		g := got.Intervals[i]
		if g.Start != iv.Start || g.End != iv.End {
			t.Errorf("interval %d bounds: %+v", i, g)
		}
		for d := range iv.Vector {
			if g.Vector[d] != iv.Vector[d] {
				t.Errorf("interval %d dim %d: %v != %v", i, d, g.Vector[d], iv.Vector[d])
			}
		}
	}
}

func TestRangeTraceRoundTrip(t *testing.T) {
	tr := &phase.Trace{
		Benchmark:  "r",
		Kind:       phase.FixedLength,
		Origin:     100,
		TotalInsts: 120,
		Intervals: []phase.Interval{
			{Index: 0, Start: 100, End: 120, Vector: []float64{1}},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != 100 {
		t.Errorf("origin = %d", got.Origin)
	}
}

func TestReadErrors(t *testing.T) {
	// Bad magic.
	if _, err := Read(bytes.NewReader([]byte("NOTATRACE123"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{4, 12, 20, len(data) - 5} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestWriteRejectsRaggedVectors(t *testing.T) {
	tr := sampleTrace()
	tr.Intervals[1].Vector = []float64{1, 2, 3}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err == nil {
		t.Error("ragged vectors accepted")
	}
}

func TestReadValidates(t *testing.T) {
	tr := sampleTrace()
	tr.Intervals[2].End = 25 // coverage hole vs TotalInsts
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("invalid trace accepted on read")
	}
}
