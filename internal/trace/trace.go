// Package trace serializes interval traces (the BBV profiling
// artifacts) to a compact binary format, so profiling and clustering
// can run as separate pipeline stages — the way SimPoint consumes
// frequency-vector files produced by a profiler.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mlpa/internal/phase"
)

// magic identifies the trace format and its version.
var magic = [8]byte{'M', 'L', 'P', 'A', 'T', 'R', 'C', '1'}

// Write serializes tr.
func Write(w io.Writer, tr *phase.Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := writeString(bw, tr.Benchmark); err != nil {
		return err
	}
	if err := writeString(bw, string(tr.Kind)); err != nil {
		return err
	}
	dims := 0
	if len(tr.Intervals) > 0 {
		dims = len(tr.Intervals[0].Vector)
	}
	for _, v := range []uint64{tr.Origin, tr.TotalInsts, uint64(len(tr.Intervals)), uint64(dims)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, iv := range tr.Intervals {
		if len(iv.Vector) != dims {
			return fmt.Errorf("trace: interval %d has %d dims, first had %d", iv.Index, len(iv.Vector), dims)
		}
		if err := binary.Write(bw, binary.LittleEndian, iv.Start); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, iv.End); err != nil {
			return err
		}
		for _, x := range iv.Vector {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(x)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write and validates it.
func Read(r io.Reader) (*phase.Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	kind, err := readString(br)
	if err != nil {
		return nil, err
	}
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	origin, total, n, dims := hdr[0], hdr[1], hdr[2], hdr[3]
	const maxIntervals = 1 << 28
	if n > maxIntervals || dims > 1<<16 {
		return nil, fmt.Errorf("trace: implausible header (%d intervals, %d dims)", n, dims)
	}
	tr := &phase.Trace{
		Benchmark:  name,
		Kind:       phase.Kind(kind),
		Origin:     origin,
		TotalInsts: total,
		Intervals:  make([]phase.Interval, n),
	}
	for i := uint64(0); i < n; i++ {
		iv := &tr.Intervals[i]
		iv.Index = int(i)
		if err := binary.Read(br, binary.LittleEndian, &iv.Start); err != nil {
			return nil, fmt.Errorf("trace: interval %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &iv.End); err != nil {
			return nil, fmt.Errorf("trace: interval %d: %w", i, err)
		}
		iv.Vector = make([]float64, dims)
		for d := range iv.Vector {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("trace: interval %d dim %d: %w", i, d, err)
			}
			iv.Vector[d] = math.Float64frombits(bits)
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("trace: reading string length: %w", err)
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("trace: reading string: %w", err)
	}
	return string(buf), nil
}
