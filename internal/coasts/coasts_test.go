package coasts

import (
	"strings"
	"testing"

	"mlpa/internal/isa"
	"mlpa/internal/obs"
	"mlpa/internal/prog"
)

// abPatternProgram builds an outer loop of `trips` iterations whose
// body alternates between kernel A and kernel B on a fixed pattern
// (two coarse phases), plus a tiny prologue loop below 1% coverage.
func abPatternProgram(t *testing.T, trips int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("abpattern")
	// Insignificant prologue loop.
	b.CountedLoop("pro", 10, 3, func() {
		b.Addi(11, 11, 1)
	})
	b.Li(1, trips)
	b.Label("outer")
	b.Andi(2, 1, 1)
	b.Bne(2, isa.RZero, "kb")
	b.CountedLoop("ka", 3, 60, func() {
		b.Add(4, 4, 4)
		b.Xor(5, 5, 4)
	})
	b.Jmp("next")
	b.Label("kb")
	b.CountedLoop("kbl", 3, 60, func() {
		b.Mul(6, 6, 6)
		b.Addi(6, 6, 1)
	})
	b.Label("next")
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "outer")
	b.Halt()
	return b.MustBuild()
}

func TestCollectBoundaries(t *testing.T) {
	p := abPatternProgram(t, 20)
	bd, err := CollectBoundaries(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Head != p.Labels["outer"] {
		t.Errorf("selected head = %d, want outer loop at %d", bd.Head, p.Labels["outer"])
	}
	if bd.Structure == nil || bd.Structure.Iterations < 19 {
		t.Errorf("structure = %+v", bd.Structure)
	}
	// The tiny prologue loop must be filtered out of All.
	for _, s := range bd.All {
		if s.Head == p.Labels["loop_pro$1"] {
			t.Errorf("insignificant loop survived coverage filter")
		}
	}
}

func TestSelectTwoCoarsePhases(t *testing.T) {
	p := abPatternProgram(t, 20)
	plan, tr, km, err := Select(p, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodName {
		t.Errorf("Method = %q", plan.Method)
	}
	// A/B alternation yields 2 main phases; the prologue-contaminated
	// first iteration may form a third small one.
	if km.K < 2 || km.K > 3 {
		t.Errorf("coarse phases = %d, want 2-3 (A/B alternation)", km.K)
	}
	if len(plan.Points) < 2 || len(plan.Points) > 3 {
		t.Fatalf("points = %d, want 2-3", len(plan.Points))
	}
	// Earliest-instance selection: the two points are iterations 0 and
	// 1, so the last point must sit very early in the program.
	if pos := plan.LastPosition(); pos > 0.25 {
		t.Errorf("last point position = %v, want very early", pos)
	}
	if tr.Kind != "iteration" {
		t.Errorf("trace kind = %v", tr.Kind)
	}
}

func TestEarliestInstanceChosen(t *testing.T) {
	p := abPatternProgram(t, 16)
	plan, _, km, err := Select(p, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range plan.Points {
		c := km.Assign[pt.Interval]
		for i := 0; i < pt.Interval; i++ {
			if km.Assign[i] == c {
				t.Fatalf("interval %d in cluster %d precedes representative %d", i, c, pt.Interval)
			}
		}
	}
}

func TestWeightsReflectPhaseShares(t *testing.T) {
	p := abPatternProgram(t, 20)
	plan, _, _, err := Select(p, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A and B kernels are the same size and alternate evenly: the two
	// dominant phases should each weigh roughly half, regardless of a
	// possible small third phase from the contaminated first iteration.
	heavy := 0
	for _, pt := range plan.Points {
		if pt.Weight >= 0.3 && pt.Weight <= 0.7 {
			heavy++
		}
	}
	if heavy != 2 {
		t.Errorf("dominant phases = %d, want 2; points = %+v", heavy, plan.Points)
	}
}

func TestKmaxCapsPhases(t *testing.T) {
	p := abPatternProgram(t, 20)
	plan, _, km, err := Select(p, Config{Seed: 8, Kmax: 1})
	if err != nil {
		t.Fatal(err)
	}
	if km.K != 1 || len(plan.Points) != 1 {
		t.Errorf("Kmax=1 produced K=%d points=%d", km.K, len(plan.Points))
	}
}

func TestNoLoopFallback(t *testing.T) {
	src := `
    addi r1, r0, 3
    add  r2, r1, r1
    mul  r3, r2, r2
    halt
`
	p, err := prog.Assemble("flat", src)
	if err != nil {
		t.Fatal(err)
	}
	plan, tr, _, err := Select(p, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 1 {
		t.Fatalf("points = %d, want 1 (whole program)", len(plan.Points))
	}
	if plan.Points[0].Len() != tr.TotalInsts {
		t.Errorf("single point covers %d of %d", plan.Points[0].Len(), tr.TotalInsts)
	}
}

func TestGccLikeVariableIterations(t *testing.T) {
	// One iteration dominates (like gcc's 60% iteration): selection
	// still works and weights track instruction mass, not counts.
	b := prog.NewBuilder("gcclike")
	b.Li(1, 8)
	b.Label("outer")
	// Iteration 5 runs a huge kernel; others a small one.
	b.Addi(2, 1, -5)
	b.Bne(2, isa.RZero, "small")
	b.CountedLoop("big", 3, 600, func() {
		b.Mul(4, 4, 4)
	})
	b.Jmp("next")
	b.Label("small")
	b.CountedLoop("sm", 3, 20, func() {
		b.Add(5, 5, 5)
	})
	b.Label("next")
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "outer")
	b.Halt()
	p := b.MustBuild()

	plan, tr, km, err := Select(p, Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// The big iteration should be its own phase carrying most weight.
	var bigWeight float64
	for _, pt := range plan.Points {
		if pt.Weight > bigWeight {
			bigWeight = pt.Weight
		}
	}
	if bigWeight < 0.5 {
		t.Errorf("dominant-iteration weight = %v, want > 0.5", bigWeight)
	}
	_ = tr
	_ = km
}

func TestDeterministic(t *testing.T) {
	p := abPatternProgram(t, 12)
	p1, _, _, err := Select(p, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, _, err := Select(p, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Points) != len(p2.Points) {
		t.Fatal("nondeterministic point count")
	}
	for i := range p1.Points {
		if p1.Points[i] != p2.Points[i] {
			t.Errorf("point %d differs", i)
		}
	}
}

// TestStaticCrossValidation: boundary collection records the
// static/dynamic loop-structure comparison and journals it.
func TestStaticCrossValidation(t *testing.T) {
	sink := &obs.MemorySink{}
	rt := obs.New(sink)
	p := abPatternProgram(t, 20)
	bd, err := CollectBoundaries(p, Config{Obs: rt})
	if err != nil {
		t.Fatal(err)
	}
	if !bd.StaticAgree {
		t.Errorf("selected head %d not confirmed by static analysis", bd.Head)
	}
	if bd.StaticLoops < 4 {
		t.Errorf("static loops = %d, want >= 4 (pro, outer, ka, kbl)", bd.StaticLoops)
	}
	var found bool
	for _, ag := range bd.Agreements {
		if ag.Head == bd.Head {
			found = true
			if !ag.InStatic || ag.DynamicDepth > ag.StaticDepth {
				t.Errorf("selected-head agreement record bad: %+v", ag)
			}
		}
	}
	if !found {
		t.Error("no agreement record for the selected head")
	}
	var rec obs.Record
	for _, r := range sink.Records() {
		if r["ev"] == "static_check" {
			rec = r
		}
	}
	if rec == nil {
		t.Fatal("no static_check journal record emitted")
	}
	if rec["agree"] != true {
		t.Errorf("journal agree = %v, want true (record %v)", rec["agree"], rec)
	}
	if rec["disagreements"] != 0 {
		t.Errorf("journal disagreements = %v, want 0", rec["disagreements"])
	}
}

// TestCollectBoundariesPreflight: a malformed guest is rejected before
// any emulation.
func TestCollectBoundariesPreflight(t *testing.T) {
	bad := &prog.Program{
		Name: "bad",
		Code: []isa.Inst{
			{Op: isa.OpAddi, Rd: 1, Rs1: isa.RZero, Imm: 2},
			{Op: isa.OpBne, Rs1: 1, Rs2: isa.RZero, Targ: 50},
			{Op: isa.OpHalt},
		},
		Labels: map[string]int64{},
	}
	if _, err := CollectBoundaries(bad, Config{}); err == nil {
		t.Fatal("boundary collection accepted a malformed program")
	} else if !strings.Contains(err.Error(), "bad-target") {
		t.Errorf("error %q does not carry the verifier diagnostic", err)
	}
}
