// Package coasts implements COASTS — COarse-grained Accurately
// Sampling Technique for Simulators — the paper's first-level sampling
// (Section IV-A). Intervals are iteration instances of an outer cyclic
// program structure discovered by dynamic boundary profiling;
// structures covering less than 1% of execution are discarded. BBVs
// are collected per iteration instance, randomly projected to 15
// dimensions, concatenated into signature vectors and normalized;
// k-means with Kmax = 3 classifies the coarse phases and the
// *earliest* instance of each phase becomes its simulation point,
// which is what collapses the functional fast-forward time.
package coasts

import (
	"fmt"

	"mlpa/internal/bbv"
	"mlpa/internal/emu"
	"mlpa/internal/kmeans"
	"mlpa/internal/obs"
	"mlpa/internal/phase"
	"mlpa/internal/prog"
	"mlpa/internal/sampling"
	"mlpa/internal/staticanalysis"
)

// Config parameterizes COASTS.
type Config struct {
	// Kmax bounds coarse-grained phase count (paper default 3).
	Kmax int

	// Dims is the projected BBV dimensionality (default 15).
	Dims int

	// Seed drives projection and clustering determinism.
	Seed int64

	// MinCoverage discards cyclic structures below this execution
	// share during boundary collection (paper: 1%).
	MinCoverage float64

	// SubChunks concatenates this many per-iteration sub-signatures
	// (default 1: one BBV per iteration instance).
	SubChunks int

	// BICFraction is the model-selection threshold (default 0.9).
	BICFraction float64

	// Obs, if non-nil, receives stage spans, clustering metrics and a
	// per-selection journal record.
	Obs *obs.Runtime
}

func (c Config) withDefaults() Config {
	if c.Kmax <= 0 {
		c.Kmax = 3
	}
	if c.Dims <= 0 {
		c.Dims = bbv.DefaultDims
	}
	if c.MinCoverage <= 0 {
		c.MinCoverage = 0.01
	}
	if c.SubChunks < 1 {
		c.SubChunks = 1
	}
	if c.BICFraction <= 0 {
		c.BICFraction = 0.9
	}
	return c
}

// MethodName is the plan label for COASTS.
const MethodName = "coasts"

// Boundary is the result of the boundary-collection profiling pass.
type Boundary struct {
	// Head is the selected cyclic structure's head PC, or -1 when the
	// program has no significant cyclic structure.
	Head int64
	// Structure is the selected structure's dynamic profile (nil when
	// Head is -1).
	Structure *emu.LoopStats
	// All lists every significant structure, by decreasing coverage.
	All []*emu.LoopStats
	// TotalInsts is the profiled execution length.
	TotalInsts uint64

	// Static cross-validation of the dynamic profile (see
	// docs/STATIC_ANALYSIS.md). StaticLoops counts the natural loops in
	// the program's static forest; Agreements holds one record per
	// significant dynamic structure; StaticAgree reports whether the
	// selected head is a static loop head at a nesting depth no deeper
	// than the dynamically observed one (vacuously true with no
	// selection).
	StaticLoops int
	Agreements  []staticanalysis.Agreement
	StaticAgree bool
}

// CollectBoundaries runs the boundary-collection pass: a functional
// execution with the dynamic loop profiler attached, followed by
// coverage filtering, coarse-structure selection, and a static
// cross-check of the dynamic loop structure.
func CollectBoundaries(p *prog.Program, cfg Config) (*Boundary, error) {
	cfg = cfg.withDefaults()
	span := cfg.Obs.StartSpan("coasts.boundaries", obs.KV("benchmark", p.Name))
	defer span.End()
	if err := staticanalysis.Preflight(p); err != nil {
		return nil, fmt.Errorf("coasts: preflight for %s: %w", p.Name, err)
	}
	m := emu.New(p, 0)
	m.Metrics = cfg.Obs.Metrics()
	lp := emu.NewLoopProfiler(m)
	m.Branch = lp.OnBranch
	if _, err := m.RunToCompletion(1 << 40); err != nil {
		return nil, fmt.Errorf("coasts: boundary collection for %s: %w", p.Name, err)
	}
	lp.Finish()
	b := &Boundary{Head: -1, TotalInsts: m.Insts}
	b.All = lp.Significant(m.Insts, cfg.MinCoverage)
	if sel := lp.SelectCoarse(m.Insts, cfg.MinCoverage); sel != nil {
		b.Head = sel.Head
		b.Structure = sel
	}
	crossValidate(p, b, lp.Structures(), cfg)
	span.SetAttr("total_insts", b.TotalInsts)
	span.SetAttr("structures", len(b.All))
	span.SetAttr("head", b.Head)
	span.SetAttr("static_agree", b.StaticAgree)
	return b, nil
}

// crossValidate compares the dynamic structures against the static
// natural-loop forest and journals the verdict. A disagreement — a
// dynamic head the static analysis does not recognize as a loop, or
// dynamic nesting deeper than the static forest allows — means the
// boundary pass is slicing intervals on a structure the program's
// control flow cannot explain, which is worth surfacing long before
// any deviation shows up in the sampled metrics.
func crossValidate(p *prog.Program, b *Boundary, all []*emu.LoopStats, cfg Config) {
	forest := staticanalysis.Analyze(p).Loops
	b.StaticLoops = len(forest.Loops)
	heads := make([]int64, len(all))
	depths := make([]int, len(all))
	for i, s := range all {
		heads[i] = s.Head
		depths[i] = s.Depth
	}
	b.Agreements = forest.CheckDynamic(heads, depths)
	// A dynamic structure can legitimately sit shallower than its
	// static depth (a 1-trip enclosing loop is invisible dynamically),
	// so agreement means: known static head, depth not exceeding the
	// static one.
	disagreements := 0
	for _, ag := range b.Agreements {
		if !ag.InStatic || ag.DynamicDepth > ag.StaticDepth {
			disagreements++
		}
	}
	b.StaticAgree = true
	if b.Head >= 0 {
		l, ok := forest.ByHead(b.Head)
		b.StaticAgree = ok && b.Structure.Depth <= l.Depth
	}
	cfg.Obs.Emit("static_check", map[string]any{
		"benchmark":     p.Name,
		"head":          b.Head,
		"static_loops":  b.StaticLoops,
		"dynamic_heads": len(heads),
		"disagreements": disagreements,
		"agree":         b.StaticAgree,
	})
}

// Profile runs the metric-collection pass: one interval per iteration
// instance of the selected structure. When no structure qualifies the
// whole program becomes a single interval.
func Profile(p *prog.Program, b *Boundary, cfg Config) (*phase.Trace, error) {
	cfg = cfg.withDefaults()
	span := cfg.Obs.StartSpan("coasts.profile", obs.KV("benchmark", p.Name))
	defer span.End()
	proj, err := bbv.NewProjector(p.NumBlocks(), cfg.Dims, cfg.Seed)
	if err != nil {
		return nil, err
	}
	head := b.Head
	if head < 0 {
		// No cyclic structure: CollectIterations with an unreachable
		// head yields a single whole-program interval.
		head = int64(len(p.Code))
	}
	tr, err := phase.CollectIterations(p, proj, head, cfg.SubChunks)
	if err == nil {
		span.SetAttr("intervals", len(tr.Intervals))
	}
	return tr, err
}

// SelectFromTrace clusters an iteration trace and picks the earliest
// instance of each coarse phase.
func SelectFromTrace(tr *phase.Trace, cfg Config) (*sampling.Plan, *kmeans.Result, error) {
	cfg = cfg.withDefaults()
	if len(tr.Intervals) == 0 {
		return nil, nil, fmt.Errorf("coasts: empty trace for %s", tr.Benchmark)
	}
	span := cfg.Obs.StartSpan("coasts.cluster",
		obs.KV("benchmark", tr.Benchmark), obs.KV("intervals", len(tr.Intervals)))
	defer span.End()
	km, err := kmeans.Best(tr.Vectors(), cfg.Kmax, kmeans.Options{
		Seed:        cfg.Seed,
		BICFraction: cfg.BICFraction,
		Metrics:     cfg.Obs.Metrics(),
	})
	if err != nil {
		return nil, nil, err
	}
	span.SetAttr("k", km.K)
	span.SetAttr("cluster_sizes", append([]int(nil), km.Sizes...))
	reps := kmeans.EarliestInCluster(km)

	clusterInsts := make([]uint64, km.K)
	for i, iv := range tr.Intervals {
		clusterInsts[km.Assign[i]] += iv.Len()
	}

	plan := &sampling.Plan{
		Benchmark:  tr.Benchmark,
		Method:     MethodName,
		TotalInsts: tr.TotalInsts,
	}
	for c, rep := range reps {
		if rep < 0 {
			continue
		}
		iv := tr.Intervals[rep]
		plan.Points = append(plan.Points, sampling.Point{
			Start:    iv.Start,
			End:      iv.End,
			Weight:   float64(clusterInsts[c]) / float64(tr.TotalInsts),
			Level:    1,
			Interval: rep,
			Parent:   -1,
		})
	}
	plan.Sort()
	plan.NormalizeWeights()
	if err := plan.Validate(); err != nil {
		return nil, nil, err
	}
	cfg.Obs.Emit("selection", map[string]any{
		"benchmark": plan.Benchmark,
		"method":    MethodName,
		"k":         km.K,
		"points":    len(plan.Points),
		"detailed":  plan.DetailedFraction(),
	})
	return plan, km, nil
}

// Select runs the complete COASTS pipeline: boundary collection,
// metric collection, coarse clustering and point selection.
func Select(p *prog.Program, cfg Config) (*sampling.Plan, *phase.Trace, *kmeans.Result, error) {
	b, err := CollectBoundaries(p, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	tr, err := Profile(p, b, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	plan, km, err := SelectFromTrace(tr, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return plan, tr, km, nil
}
