// Package stats provides the aggregate statistics the paper's tables
// report: geometric and arithmetic means, relative deviations, and
// average/worst-case accumulators.
package stats

import (
	"fmt"
	"math"
)

// GeoMean returns the geometric mean of xs (the paper's AVG rows use
// geometric means). Non-positive entries are rejected with NaN.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// ArithMean returns the arithmetic mean of xs.
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Deviation returns the relative deviation |est-truth| / |truth|,
// the paper's error metric. A zero truth with nonzero estimate yields
// +Inf; zero/zero yields 0.
func Deviation(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// Agg accumulates deviations for one (metric, method, config) cell of
// Table II: geometric-mean-friendly average plus worst case.
type Agg struct {
	values []float64
	worst  float64
	names  []string
	wName  string
}

// Add records one benchmark's deviation.
func (a *Agg) Add(name string, dev float64) {
	a.values = append(a.values, dev)
	a.names = append(a.names, name)
	if dev > a.worst {
		a.worst = dev
		a.wName = name
	}
}

// N returns the number of recorded values.
func (a *Agg) N() int { return len(a.values) }

// Avg returns the arithmetic mean deviation. (Geometric means are
// undefined when any deviation is zero, which happens routinely for
// hit-rate deviations, so averages of deviations use the arithmetic
// mean; speedups use GeoMean.)
func (a *Agg) Avg() float64 { return ArithMean(a.values) }

// Worst returns the worst deviation and the benchmark that caused it.
func (a *Agg) Worst() (float64, string) { return a.worst, a.wName }

// Values returns the recorded deviations in insertion order.
func (a *Agg) Values() []float64 { return a.values }

// FormatPct renders a fraction as a percentage with two decimals, the
// paper's table style.
func FormatPct(x float64) string {
	if math.IsNaN(x) {
		return "n/a"
	}
	if math.IsInf(x, 0) {
		return "inf"
	}
	return fmt.Sprintf("%.2f%%", x*100)
}
