package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); got != 4 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); got != 5 {
		t.Errorf("GeoMean(5) = %v", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("GeoMean(nil) != NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, 0})) {
		t.Error("GeoMean with zero != NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Error("GeoMean with negative != NaN")
	}
}

func TestArithMean(t *testing.T) {
	if got := ArithMean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("ArithMean = %v", got)
	}
	if !math.IsNaN(ArithMean(nil)) {
		t.Error("ArithMean(nil) != NaN")
	}
}

func TestDeviation(t *testing.T) {
	if got := Deviation(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Deviation = %v, want 0.1", got)
	}
	if got := Deviation(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Deviation = %v, want 0.1", got)
	}
	if got := Deviation(0, 0); got != 0 {
		t.Errorf("Deviation(0,0) = %v", got)
	}
	if got := Deviation(1, 0); !math.IsInf(got, 1) {
		t.Errorf("Deviation(1,0) = %v", got)
	}
	if got := Deviation(-110, -100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Deviation negatives = %v", got)
	}
}

func TestAgg(t *testing.T) {
	var a Agg
	a.Add("x", 0.01)
	a.Add("y", 0.05)
	a.Add("z", 0.03)
	if a.N() != 3 {
		t.Errorf("N = %d", a.N())
	}
	if got := a.Avg(); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("Avg = %v", got)
	}
	w, name := a.Worst()
	if w != 0.05 || name != "y" {
		t.Errorf("Worst = %v, %q", w, name)
	}
	if len(a.Values()) != 3 {
		t.Errorf("Values = %v", a.Values())
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(0.0143); got != "1.43%" {
		t.Errorf("FormatPct = %q", got)
	}
	if got := FormatPct(math.NaN()); got != "n/a" {
		t.Errorf("FormatPct(NaN) = %q", got)
	}
	if got := FormatPct(math.Inf(1)); got != "inf" {
		t.Errorf("FormatPct(Inf) = %q", got)
	}
}

// Property: GeoMean <= ArithMean for positive data (AM-GM).
func TestAMGM(t *testing.T) {
	f := func(raw [6]float64) bool {
		xs := make([]float64, 6)
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			xs[i] = math.Abs(math.Mod(x, 100)) + 0.1
		}
		return GeoMean(xs) <= ArithMean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: deviation is scale-invariant.
func TestDeviationScaleInvariant(t *testing.T) {
	f := func(e, tr float64, scaleRaw uint8) bool {
		if math.IsNaN(e) || math.IsNaN(tr) || math.IsInf(e, 0) || math.IsInf(tr, 0) || tr == 0 {
			return true
		}
		if math.Abs(e) > 1e300 || math.Abs(tr) > 1e300 {
			return true // scaling would overflow
		}
		s := float64(scaleRaw%9) + 1
		d1 := Deviation(e, tr)
		d2 := Deviation(e*s, tr*s)
		if math.IsInf(d1, 0) || d1 > 1e12 {
			return true
		}
		return math.Abs(d1-d2) < 1e-9*(1+d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
