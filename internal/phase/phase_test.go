package phase

import (
	"testing"

	"mlpa/internal/bbv"
	"mlpa/internal/emu"
	"mlpa/internal/isa"
	"mlpa/internal/prog"
)

// twoPhaseProgram alternates between two kernels with very different
// block mixes inside an outer loop.
func twoPhaseProgram(t *testing.T, outerTrips int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("two-phase")
	b.Li(1, outerTrips)
	b.Label("outer")
	// Kernel A on even counter values, kernel B on odd.
	b.Andi(2, 1, 1)
	b.Bne(2, isa.RZero, "kb")
	b.CountedLoop("ka", 3, 40, func() {
		b.Add(4, 4, 4)
		b.Xor(5, 5, 4)
	})
	b.Jmp("next")
	b.Label("kb")
	b.CountedLoop("kbl", 3, 40, func() {
		b.Mul(6, 6, 6)
		b.Addi(6, 6, 1)
	})
	b.Label("next")
	b.Addi(1, 1, -1)
	b.Bne(1, isa.RZero, "outer")
	b.Halt()
	return b.MustBuild()
}

func projFor(p *prog.Program) *bbv.Projector {
	return bbv.MustNewProjector(p.NumBlocks(), bbv.DefaultDims, 42)
}

func TestCollectFixedCoversProgram(t *testing.T) {
	p := twoPhaseProgram(t, 10)
	tr, err := CollectFixed(p, projFor(p), 100)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != FixedLength {
		t.Errorf("Kind = %v", tr.Kind)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) < 5 {
		t.Fatalf("too few intervals: %d", len(tr.Intervals))
	}
	// All but the last interval are exactly 100 instructions.
	for i, iv := range tr.Intervals[:len(tr.Intervals)-1] {
		if iv.Len() != 100 {
			t.Errorf("interval %d length %d, want 100", i, iv.Len())
		}
	}
	if got := tr.Intervals[len(tr.Intervals)-1].End; got != tr.TotalInsts {
		t.Errorf("last interval ends at %d, total %d", got, tr.TotalInsts)
	}
}

func TestCollectFixedErrors(t *testing.T) {
	p := twoPhaseProgram(t, 2)
	if _, err := CollectFixed(p, projFor(p), 0); err == nil {
		t.Error("intervalLen=0 accepted")
	}
}

func TestCollectFixedSignaturesDiffer(t *testing.T) {
	p := twoPhaseProgram(t, 20)
	tr, err := CollectFixed(p, projFor(p), 90) // roughly one kernel run per interval
	if err != nil {
		t.Fatal(err)
	}
	// Expect at least two clearly different signatures among intervals.
	var maxD float64
	for i := 1; i < len(tr.Intervals); i++ {
		d := dist2(tr.Intervals[0].Vector, tr.Intervals[i].Vector)
		if d > maxD {
			maxD = d
		}
	}
	if maxD < 1e-6 {
		t.Errorf("all interval signatures identical (maxD %v)", maxD)
	}
}

func TestCollectIterationsBoundaries(t *testing.T) {
	p := twoPhaseProgram(t, 8)
	head := p.Labels["loop_outer$0"]
	// Find the outer loop head dynamically instead: profile it.
	head = findOuterHead(t, p)
	tr, err := CollectIterations(p, projFor(p), head, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != Iteration {
		t.Errorf("Kind = %v", tr.Kind)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8 outer trips -> 8 iteration intervals (last absorbs epilogue).
	if len(tr.Intervals) != 8 {
		t.Fatalf("intervals = %d, want 8", len(tr.Intervals))
	}
}

func findOuterHead(t *testing.T, p *prog.Program) int64 {
	t.Helper()
	m := emu.New(p, 0)
	lp := emu.NewLoopProfiler(m)
	m.Branch = lp.OnBranch
	if _, err := m.RunToCompletion(1 << 30); err != nil {
		t.Fatal(err)
	}
	lp.Finish()
	sel := lp.SelectCoarse(m.Insts, 0.01)
	if sel == nil {
		t.Fatal("no coarse structure found")
	}
	return sel.Head
}

func TestCollectIterationsAlternatingPhases(t *testing.T) {
	p := twoPhaseProgram(t, 10)
	head := findOuterHead(t, p)
	tr, err := CollectIterations(p, projFor(p), head, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Iterations alternate kernels: signature(0) ~ signature(2) and
	// distinct from signature(1).
	same := dist2(tr.Intervals[0].Vector, tr.Intervals[2].Vector)
	diff := dist2(tr.Intervals[0].Vector, tr.Intervals[1].Vector)
	if same*10 > diff {
		t.Errorf("alternating phases not separated: same=%v diff=%v", same, diff)
	}
}

func TestCollectIterationsSubChunks(t *testing.T) {
	p := twoPhaseProgram(t, 6)
	head := findOuterHead(t, p)
	tr, err := CollectIterations(p, projFor(p), head, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 3 * bbv.DefaultDims
	for _, iv := range tr.Intervals {
		if len(iv.Vector) != wantLen {
			t.Fatalf("sub-chunked vector length %d, want %d", len(iv.Vector), wantLen)
		}
	}
}

func TestCollectIterationsNoLoop(t *testing.T) {
	p, err := prog.Assemble("flat", "addi r1, r0, 5\nadd r2, r1, r1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	proj := bbv.MustNewProjector(p.NumBlocks(), 15, 1)
	tr, err := CollectIterations(p, proj, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Whole program becomes a single interval.
	if len(tr.Intervals) != 1 || tr.Intervals[0].Len() != tr.TotalInsts {
		t.Errorf("intervals = %+v", tr.Intervals)
	}
}

func TestPosition(t *testing.T) {
	tr := &Trace{
		TotalInsts: 100,
		Intervals: []Interval{
			{Index: 0, Start: 0, End: 50},
			{Index: 1, Start: 50, End: 100},
		},
	}
	if got := tr.Position(0); got != 0.49 {
		t.Errorf("Position(0) = %v, want 0.49", got)
	}
	if got := tr.Position(1); got != 0.99 {
		t.Errorf("Position(1) = %v, want 0.99", got)
	}
	empty := &Trace{}
	empty.Intervals = []Interval{{End: 1}}
	if empty.Position(0) != 0 {
		t.Error("Position on empty trace != 0")
	}
}

func TestValidateCatchesGaps(t *testing.T) {
	bad := &Trace{
		TotalInsts: 10,
		Intervals: []Interval{
			{Index: 0, Start: 0, End: 4},
			{Index: 1, Start: 5, End: 10}, // gap at 4
		},
	}
	if err := bad.Validate(); err == nil {
		t.Error("gap accepted")
	}
	short := &Trace{
		TotalInsts: 10,
		Intervals:  []Interval{{Index: 0, Start: 0, End: 4}},
	}
	if err := short.Validate(); err == nil {
		t.Error("short coverage accepted")
	}
	empty := &Trace{
		TotalInsts: 4,
		Intervals:  []Interval{{Index: 0, Start: 0, End: 4}, {Index: 1, Start: 4, End: 4}},
	}
	if err := empty.Validate(); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestVectors(t *testing.T) {
	tr := &Trace{Intervals: []Interval{
		{Vector: []float64{1}},
		{Vector: []float64{2}},
	}}
	v := tr.Vectors()
	if len(v) != 2 || v[0][0] != 1 || v[1][0] != 2 {
		t.Errorf("Vectors = %v", v)
	}
}

func TestSliceByInstructions(t *testing.T) {
	tr := &Trace{
		TotalInsts: 30,
		Intervals: []Interval{
			{Index: 0, Start: 0, End: 10},
			{Index: 1, Start: 10, End: 20},
			{Index: 2, Start: 20, End: 30},
		},
	}
	got := tr.SliceByInstructions(10, 30)
	if len(got) != 2 || got[0].Index != 1 {
		t.Errorf("SliceByInstructions = %+v", got)
	}
	if got := tr.SliceByInstructions(5, 15); len(got) != 0 {
		t.Errorf("partial overlap returned %+v", got)
	}
}

func TestFixedAndIterationTotalsAgree(t *testing.T) {
	p := twoPhaseProgram(t, 5)
	proj := projFor(p)
	fixed, err := CollectFixed(p, proj, 64)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := CollectIterations(p, proj, findOuterHead(t, p), 1)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.TotalInsts != iter.TotalInsts {
		t.Errorf("totals differ: fixed %d, iteration %d", fixed.TotalInsts, iter.TotalInsts)
	}
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
