// Package phase defines execution intervals — the unit of phase
// analysis — and the profiling collectors that produce them: fixed
// instruction-length intervals (SimPoint's fine-grained scheme) and
// variable-length cyclic-structure iteration intervals (the paper's
// coarse-grained COASTS scheme).
package phase

import (
	"fmt"

	"mlpa/internal/bbv"
	"mlpa/internal/emu"
	"mlpa/internal/prog"
)

// Kind distinguishes interval granularities.
type Kind string

// Interval kinds.
const (
	FixedLength Kind = "fixed"     // fine-grained, fixed instruction count
	Iteration   Kind = "iteration" // coarse-grained, loop-iteration bounded
)

// Interval is one contiguous execution region with its behaviour
// signature.
type Interval struct {
	Index  int
	Start  uint64 // committed-instruction count at interval start
	End    uint64 // exclusive
	Vector []float64
}

// Len returns the interval length in instructions.
func (iv Interval) Len() uint64 { return iv.End - iv.Start }

// Trace is the profiling result for one program (or one execution
// range of it): its intervals in execution order.
type Trace struct {
	Benchmark string
	Kind      Kind
	Intervals []Interval

	// Origin is the absolute instruction count where the trace begins
	// (0 for whole-program traces, the region start for range traces).
	Origin uint64

	// TotalInsts is the absolute instruction count where the trace
	// ends (program length for whole-program traces).
	TotalInsts uint64
}

// Vectors returns the interval signature matrix (rows in execution
// order) for clustering.
func (t *Trace) Vectors() [][]float64 {
	out := make([][]float64, len(t.Intervals))
	for i := range t.Intervals {
		out[i] = t.Intervals[i].Vector
	}
	return out
}

// Validate checks trace invariants: contiguous, non-empty intervals
// covering [Origin, TotalInsts).
func (t *Trace) Validate() error {
	prev := t.Origin
	for i, iv := range t.Intervals {
		if iv.Index != i {
			return fmt.Errorf("phase: interval %d has index %d", i, iv.Index)
		}
		if iv.Start != prev {
			return fmt.Errorf("phase: interval %d starts at %d, want %d", i, iv.Start, prev)
		}
		if iv.End <= iv.Start {
			return fmt.Errorf("phase: interval %d empty [%d,%d)", i, iv.Start, iv.End)
		}
		prev = iv.End
	}
	if prev != t.TotalInsts {
		return fmt.Errorf("phase: intervals cover %d instructions, trace has %d", prev, t.TotalInsts)
	}
	return nil
}

// Position returns the paper's "position" of interval i: the
// instruction count before its last instruction divided by the total
// instruction count.
func (t *Trace) Position(i int) float64 {
	if t.TotalInsts == 0 {
		return 0
	}
	return float64(t.Intervals[i].End-1) / float64(t.TotalInsts)
}

// runBound is the safety bound for profiled executions.
const runBound = 1 << 40

// CollectFixed executes p from the start and produces fixed-length
// intervals of intervalLen instructions, each carrying its projected,
// normalized BBV signature. The final partial interval (if any) is
// kept, as SimPoint does.
func CollectFixed(p *prog.Program, proj *bbv.Projector, intervalLen uint64) (*Trace, error) {
	if intervalLen == 0 {
		return nil, fmt.Errorf("phase: intervalLen = 0")
	}
	m := emu.New(p, 0)
	tr := &Trace{Benchmark: p.Name, Kind: FixedLength}
	var start uint64
	for !m.Halted {
		n, err := m.Run(intervalLen)
		if err != nil {
			return nil, fmt.Errorf("phase: CollectFixed(%s): %w", p.Name, err)
		}
		if n == 0 {
			break
		}
		vec, err := proj.Signature(m.BlockCounts)
		if err != nil {
			return nil, err
		}
		m.ResetBlockCounts()
		tr.Intervals = append(tr.Intervals, Interval{
			Index:  len(tr.Intervals),
			Start:  start,
			End:    m.Insts,
			Vector: vec,
		})
		start = m.Insts
		if m.Insts > runBound {
			return nil, fmt.Errorf("phase: CollectFixed(%s): run bound exceeded", p.Name)
		}
	}
	tr.TotalInsts = m.Insts
	return tr, tr.Validate()
}

// CollectIterations executes p from the start and produces one
// interval per iteration of the cyclic structure headed at head.
// Instructions before the first arrival attach to the first iteration;
// instructions after the last back-edge (including program epilogue)
// form the final interval. subChunks > 1 splits each iteration into
// that many equal sub-spans whose projected BBVs are concatenated into
// the iteration signature (the paper's signature concatenation); 0 or
// 1 yields one BBV per iteration.
func CollectIterations(p *prog.Program, proj *bbv.Projector, head int64, subChunks int) (*Trace, error) {
	if subChunks < 1 {
		subChunks = 1
	}
	m := emu.New(p, 0)
	tr := &Trace{Benchmark: p.Name, Kind: Iteration}

	var (
		start     uint64
		rawBounds []uint64
		raws      [][]uint64 // raw block counts per iteration
	)
	m.Branch = emu.IterationMarker(m, head, func(iter int, insts uint64) {
		raws = append(raws, m.SnapshotBlockCounts())
		m.ResetBlockCounts()
		rawBounds = append(rawBounds, insts)
	})
	if _, err := m.RunToCompletion(runBound); err != nil {
		return nil, fmt.Errorf("phase: CollectIterations(%s): %w", p.Name, err)
	}
	// Final iteration: remaining counts to program end.
	final := m.SnapshotBlockCounts()
	nonzero := false
	for _, c := range final {
		if c != 0 {
			nonzero = true
			break
		}
	}
	if nonzero || len(raws) == 0 {
		raws = append(raws, final)
		rawBounds = append(rawBounds, m.Insts)
	} else if len(rawBounds) > 0 {
		rawBounds[len(rawBounds)-1] = m.Insts
	}

	for i, counts := range raws {
		var vec []float64
		var err error
		if subChunks == 1 {
			vec, err = proj.Signature(counts)
		} else {
			vec, err = chunkedSignature(counts, proj, subChunks)
		}
		if err != nil {
			return nil, err
		}
		tr.Intervals = append(tr.Intervals, Interval{
			Index:  i,
			Start:  start,
			End:    rawBounds[i],
			Vector: vec,
		})
		start = rawBounds[i]
	}
	tr.TotalInsts = m.Insts
	return tr, tr.Validate()
}

// chunkedSignature approximates the concatenated sub-chunk signature
// from a single aggregate count vector by replicating the aggregate
// distribution across chunks. Collecting true temporal sub-chunks
// would require a second pass per iteration; the aggregate form
// preserves the clustering metric (see DESIGN.md) while the extension
// exists mainly to keep signature dimensionality compatible with
// multi-chunk configurations.
func chunkedSignature(counts []uint64, proj *bbv.Projector, chunks int) ([]float64, error) {
	base, err := proj.Project(counts)
	if err != nil {
		return nil, err
	}
	parts := make([][]float64, chunks)
	for i := range parts {
		parts[i] = base
	}
	return bbv.Concat(parts), nil
}

// CollectFixedRange profiles fixed-length intervals within the
// absolute instruction range [start, end): the program is functionally
// fast-forwarded to start, then chunked like CollectFixed. Interval
// Start/End values are absolute; the final interval is truncated at
// end. This is the second-level profiling pass of the multi-level
// framework, applied inside a selected coarse-grained simulation
// point.
func CollectFixedRange(p *prog.Program, proj *bbv.Projector, intervalLen, start, end uint64) (*Trace, error) {
	if intervalLen == 0 {
		return nil, fmt.Errorf("phase: intervalLen = 0")
	}
	if end <= start {
		return nil, fmt.Errorf("phase: empty range [%d,%d)", start, end)
	}
	m := emu.New(p, 0)
	if start > 0 {
		n, err := m.Run(start)
		if err != nil {
			return nil, fmt.Errorf("phase: CollectFixedRange(%s) fast-forward: %w", p.Name, err)
		}
		if n < start {
			return nil, fmt.Errorf("phase: CollectFixedRange(%s): program ended at %d before range start %d", p.Name, n, start)
		}
	}
	m.ResetBlockCounts()
	tr := &Trace{Benchmark: p.Name, Kind: FixedLength, Origin: start}
	cur := start
	for !m.Halted && cur < end {
		step := intervalLen
		if cur+step > end {
			step = end - cur
		}
		n, err := m.Run(step)
		if err != nil {
			return nil, fmt.Errorf("phase: CollectFixedRange(%s): %w", p.Name, err)
		}
		if n == 0 {
			break
		}
		vec, err := proj.Signature(m.BlockCounts)
		if err != nil {
			return nil, err
		}
		m.ResetBlockCounts()
		tr.Intervals = append(tr.Intervals, Interval{
			Index:  len(tr.Intervals),
			Start:  cur,
			End:    m.Insts,
			Vector: vec,
		})
		cur = m.Insts
	}
	tr.TotalInsts = cur
	return tr, tr.Validate()
}

// SliceByInstructions returns the sub-range of trace intervals fully
// contained in the instruction range [start, end).
func (t *Trace) SliceByInstructions(start, end uint64) []Interval {
	var out []Interval
	for _, iv := range t.Intervals {
		if iv.Start >= start && iv.End <= end {
			out = append(out, iv)
		}
	}
	return out
}
