package phasepred

import (
	"testing"

	"mlpa/internal/bench"
	"mlpa/internal/coasts"
)

func repeat(pattern []int, times int) []int {
	var out []int
	for i := 0; i < times; i++ {
		out = append(out, pattern...)
	}
	return out
}

func TestLastPredictor(t *testing.T) {
	l := NewLast()
	if l.Predict() != -1 {
		t.Error("cold Last predicted")
	}
	// Long runs: last-phase is nearly perfect.
	seq := repeat([]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 1}, 10)
	acc := Evaluate(seq, NewLast())
	if acc < 0.75 || acc > 0.95 {
		t.Errorf("last-phase accuracy on 90%% runs = %v", acc)
	}
	// Alternation: last-phase is always wrong.
	if acc := Evaluate(repeat([]int{0, 1}, 50), NewLast()); acc > 0.05 {
		t.Errorf("last-phase accuracy on alternation = %v", acc)
	}
}

func TestMarkovLearnsAlternation(t *testing.T) {
	seq := repeat([]int{0, 1}, 100)
	acc := Evaluate(seq, NewMarkov(1))
	if acc < 0.9 {
		t.Errorf("markov-1 accuracy on alternation = %v", acc)
	}
	// Order-2 pattern 0,0,1: markov-1 cannot disambiguate after a 0,
	// markov-2 can.
	seq = repeat([]int{0, 0, 1}, 120)
	acc1 := Evaluate(seq, NewMarkov(1))
	acc2 := Evaluate(seq, NewMarkov(2))
	if acc2 <= acc1 {
		t.Errorf("markov-2 (%v) not above markov-1 (%v) on order-2 pattern", acc2, acc1)
	}
	if acc2 < 0.9 {
		t.Errorf("markov-2 accuracy = %v", acc2)
	}
}

func TestRLEMarkovLearnsRunStructure(t *testing.T) {
	// Phase 0 runs for 7, then 1 runs for 3, repeating: last-phase
	// misses every transition; RLE-Markov learns the run lengths.
	pattern := append(repeat([]int{0}, 7), repeat([]int{1}, 3)...)
	seq := repeat(pattern, 40)
	last := Evaluate(seq, NewLast())
	rle := Evaluate(seq, NewRLEMarkov())
	if rle <= last {
		t.Errorf("rle-markov (%v) not above last-phase (%v)", rle, last)
	}
	if rle < 0.95 {
		t.Errorf("rle-markov accuracy = %v", rle)
	}
}

func TestEvaluateEmptyAndCold(t *testing.T) {
	if got := Evaluate(nil, NewLast()); got != 0 {
		t.Errorf("empty Evaluate = %v", got)
	}
	if got := Evaluate([]int{5}, NewLast()); got != 0 {
		t.Errorf("single-element Evaluate = %v (nothing scoreable)", got)
	}
}

func TestTransitions(t *testing.T) {
	if got := Transitions([]int{1, 1, 2, 2, 1}); got != 2 {
		t.Errorf("Transitions = %d", got)
	}
	if got := Transitions(nil); got != 0 {
		t.Errorf("Transitions(nil) = %d", got)
	}
}

// The suite's coarse phase sequences are highly predictable — the
// property that makes phase-guided dynamic optimization viable, and
// the same regularity COASTS exploits statically.
func TestSuiteCoarseSequencesArePredictable(t *testing.T) {
	for _, name := range []string{"gzip", "equake", "lucas"} {
		spec, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := spec.MustProgram(bench.SizeTiny)
		_, tr, km, err := coasts.Select(p, coasts.Config{Seed: 1, Kmax: 8})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := PhaseSequence(tr, km)
		if err != nil {
			t.Fatal(err)
		}
		rle := Evaluate(seq, NewRLEMarkov())
		mk := Evaluate(seq, NewMarkov(2))
		best := rle
		if mk > best {
			best = mk
		}
		if best < 0.7 {
			t.Errorf("%s: best phase-prediction accuracy %v (rle %v, markov %v)", name, best, rle, mk)
		}
	}
}

func TestPhaseSequenceMismatch(t *testing.T) {
	spec, _ := bench.ByName("gzip")
	p := spec.MustProgram(bench.SizeTiny)
	_, tr, km, err := coasts.Select(p, coasts.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	km.Assign = km.Assign[:len(km.Assign)-1]
	if _, err := PhaseSequence(tr, km); err == nil {
		t.Error("mismatched assignment length accepted")
	}
}
