// Package phasepred implements runtime phase prediction over coarse
// phase sequences — the dynamic-optimization use of phase analysis the
// paper's related work points at (Sherwood et al.'s phase tracking and
// prediction): given the phase IDs of past intervals, predict the next
// interval's phase. Three predictors are provided: last-phase, a
// fixed-order Markov predictor, and the run-length-encoded Markov
// predictor that exploits the long runs typical of coarse phases.
package phasepred

import (
	"fmt"

	"mlpa/internal/kmeans"
	"mlpa/internal/phase"
)

// Predictor consumes an observed phase sequence and predicts the next
// phase before each observation.
type Predictor interface {
	// Predict returns the predicted next phase ID (-1 when the
	// predictor has no basis yet).
	Predict() int
	// Observe reveals the actual phase of the interval just executed.
	Observe(phaseID int)
	// Name identifies the predictor.
	Name() string
}

// Last predicts that the next interval continues the current phase —
// the baseline that long phase runs make strong.
type Last struct {
	last int
	seen bool
}

// NewLast returns a last-phase predictor.
func NewLast() *Last { return &Last{} }

// Name implements Predictor.
func (l *Last) Name() string { return "last-phase" }

// Predict implements Predictor.
func (l *Last) Predict() int {
	if !l.seen {
		return -1
	}
	return l.last
}

// Observe implements Predictor.
func (l *Last) Observe(p int) {
	l.last = p
	l.seen = true
}

// Markov predicts from the most frequent successor of the recent
// phase history of fixed order.
type Markov struct {
	order   int
	history []int
	table   map[string]map[int]int
}

// NewMarkov returns an order-k Markov predictor.
func NewMarkov(order int) *Markov {
	if order < 1 {
		order = 1
	}
	return &Markov{order: order, table: make(map[string]map[int]int)}
}

// Name implements Predictor.
func (m *Markov) Name() string { return fmt.Sprintf("markov-%d", m.order) }

func (m *Markov) key() string {
	if len(m.history) < m.order {
		return ""
	}
	k := ""
	for _, p := range m.history[len(m.history)-m.order:] {
		k += fmt.Sprintf("%d,", p)
	}
	return k
}

// Predict implements Predictor.
func (m *Markov) Predict() int {
	k := m.key()
	if k == "" {
		if len(m.history) > 0 {
			return m.history[len(m.history)-1]
		}
		return -1
	}
	succ, ok := m.table[k]
	if !ok || len(succ) == 0 {
		return m.history[len(m.history)-1]
	}
	best, bestN := -1, -1
	for p, n := range succ {
		if n > bestN || (n == bestN && p < best) {
			best, bestN = p, n
		}
	}
	return best
}

// Observe implements Predictor.
func (m *Markov) Observe(p int) {
	if k := m.key(); k != "" {
		succ := m.table[k]
		if succ == nil {
			succ = make(map[int]int)
			m.table[k] = succ
		}
		succ[p]++
	}
	m.history = append(m.history, p)
	if len(m.history) > m.order*4 {
		m.history = m.history[len(m.history)-m.order:]
	}
}

// RLEMarkov is the run-length-encoded Markov predictor: state is the
// (phase, observed run length) pair, which captures "phase A runs for
// ~N intervals, then B follows" — the structure coarse phases exhibit.
type RLEMarkov struct {
	cur    int
	runLen int
	seen   bool
	table  map[[2]int]map[int]int
}

// NewRLEMarkov returns a run-length-encoded Markov predictor.
func NewRLEMarkov() *RLEMarkov {
	return &RLEMarkov{table: make(map[[2]int]map[int]int)}
}

// Name implements Predictor.
func (r *RLEMarkov) Name() string { return "rle-markov" }

// Predict implements Predictor.
func (r *RLEMarkov) Predict() int {
	if !r.seen {
		return -1
	}
	if succ, ok := r.table[[2]int{r.cur, r.runLen}]; ok && len(succ) > 0 {
		best, bestN := -1, -1
		for p, n := range succ {
			if n > bestN || (n == bestN && p < best) {
				best, bestN = p, n
			}
		}
		return best
	}
	return r.cur // default: run continues
}

// Observe implements Predictor.
func (r *RLEMarkov) Observe(p int) {
	if r.seen {
		key := [2]int{r.cur, r.runLen}
		succ := r.table[key]
		if succ == nil {
			succ = make(map[int]int)
			r.table[key] = succ
		}
		succ[p]++
	}
	if r.seen && p == r.cur {
		r.runLen++
	} else {
		r.cur = p
		r.runLen = 1
	}
	r.seen = true
}

// Evaluate feeds seq through p and returns the fraction of correct
// predictions (warm predictions only: steps where Predict returned a
// phase are scored).
func Evaluate(seq []int, p Predictor) float64 {
	correct, scored := 0, 0
	for _, actual := range seq {
		pred := p.Predict()
		if pred >= 0 {
			scored++
			if pred == actual {
				correct++
			}
		}
		p.Observe(actual)
	}
	if scored == 0 {
		return 0
	}
	return float64(correct) / float64(scored)
}

// PhaseSequence maps a trace's intervals to their cluster IDs in
// execution order — the sequence a runtime phase tracker would see.
func PhaseSequence(tr *phase.Trace, km *kmeans.Result) ([]int, error) {
	if len(km.Assign) != len(tr.Intervals) {
		return nil, fmt.Errorf("phasepred: %d assignments for %d intervals", len(km.Assign), len(tr.Intervals))
	}
	return append([]int(nil), km.Assign...), nil
}

// Transitions counts phase changes in a sequence.
func Transitions(seq []int) int {
	n := 0
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1] {
			n++
		}
	}
	return n
}
